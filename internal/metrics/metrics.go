// Package metrics provides the measurement machinery of the evaluation:
// latency recorders (median/P99 per service), core-utilization integration
// over simulated time, Harvest VM throughput counters, and per-request
// overhead breakdowns (core re-assignment vs flush vs execution, Figure 6).
package metrics

import (
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
)

// LatencyRecorder collects end-to-end request latencies. It runs in one of
// two modes behind the same interface:
//
//   - exact (NewLatencyRecorder): every sample is kept, quantiles are exact.
//     The mode for golden runs and single-server experiments, where
//     byte-stable exact percentiles matter more than memory.
//   - sketch (NewLatencySketch): samples fold into a bounded mergeable
//     log-linear sketch (stats.Sketch); memory stays flat no matter how
//     long the run, at a bounded relative quantile error
//     (stats.SketchRelativeError). The mode for fleet-scale scenario runs.
type LatencyRecorder struct {
	rec *stats.Recorder // exact mode
	sk  *stats.Sketch   // sketch mode
}

// NewLatencyRecorder returns an empty exact recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{rec: stats.NewRecorder()}
}

// NewLatencySketch returns an empty bounded-memory sketch recorder.
func NewLatencySketch() *LatencyRecorder {
	return &LatencyRecorder{sk: stats.NewSketch()}
}

// Sketched reports whether the recorder runs in sketch mode.
func (l *LatencyRecorder) Sketched() bool { return l.sk != nil }

// Add records one latency.
func (l *LatencyRecorder) Add(d sim.Duration) {
	if l.sk != nil {
		l.sk.Add(float64(d))
		return
	}
	l.rec.Add(float64(d))
}

// Merge folds all of other's samples into l. Exact samples fold into a
// sketch target losslessly (each sample is re-bucketed); the reverse —
// reconstructing exact samples from a sketch — is impossible, so merging a
// sketch into an exact recorder panics: construct the aggregate with the
// same mode as its sources.
func (l *LatencyRecorder) Merge(other *LatencyRecorder) {
	switch {
	case l.sk != nil && other.sk != nil:
		l.sk.Merge(other.sk)
	case l.sk != nil:
		other.rec.Each(l.sk.Add)
	case other.sk != nil:
		panic("metrics: cannot merge a sketch recorder into an exact recorder")
	default:
		l.rec.Merge(other.rec)
	}
}

// Freeze pre-sorts an exact recorder so later percentile queries are pure
// reads and therefore safe from concurrent readers. Call after the last
// Add/Merge, before sharing the recorder across goroutines. Sketch queries
// are already pure reads, so Freeze is a no-op in sketch mode.
func (l *LatencyRecorder) Freeze() {
	if l.sk == nil {
		l.rec.Sort()
	}
}

// SampleLatency draws from the measured distribution by inverse-CDF: u in
// [0,1) selects the u-quantile.
func (l *LatencyRecorder) SampleLatency(u float64) sim.Duration {
	if l.sk != nil {
		return sim.Duration(l.sk.Quantile(u))
	}
	return sim.Duration(l.rec.Quantile(u))
}

// Count reports recorded samples.
func (l *LatencyRecorder) Count() int {
	if l.sk != nil {
		return l.sk.Count()
	}
	return l.rec.Count()
}

// P50 reports the median latency.
func (l *LatencyRecorder) P50() sim.Duration {
	if l.sk != nil {
		return sim.Duration(l.sk.P50())
	}
	return sim.Duration(l.rec.P50())
}

// P99 reports the 99th-percentile latency.
func (l *LatencyRecorder) P99() sim.Duration {
	if l.sk != nil {
		return sim.Duration(l.sk.P99())
	}
	return sim.Duration(l.rec.P99())
}

// Mean reports the mean latency.
func (l *LatencyRecorder) Mean() sim.Duration {
	if l.sk != nil {
		return sim.Duration(l.sk.Mean())
	}
	return sim.Duration(l.rec.Mean())
}

// Max reports the maximum latency.
func (l *LatencyRecorder) Max() sim.Duration {
	if l.sk != nil {
		return sim.Duration(l.sk.Max())
	}
	return sim.Duration(l.rec.Max())
}

// Utilization integrates per-core busy time to report average busy cores,
// the §6.7 metric.
type Utilization struct {
	cores     int
	busySince []sim.Time
	busy      []bool
	busyTotal []sim.Duration
	finished  bool
}

// NewUtilization tracks n cores.
func NewUtilization(n int) *Utilization {
	return &Utilization{
		cores:     n,
		busySince: make([]sim.Time, n),
		busy:      make([]bool, n),
		busyTotal: make([]sim.Duration, n),
	}
}

// SetBusy transitions a core's busy state at time now. Redundant transitions
// are ignored, as is any transition after Finish: the accumulator is frozen
// at the end of the measurement window.
func (u *Utilization) SetBusy(core int, now sim.Time, busy bool) {
	if u.finished || u.busy[core] == busy {
		return
	}
	if busy {
		u.busySince[core] = now
	} else {
		u.busyTotal[core] += now.Sub(u.busySince[core])
	}
	u.busy[core] = busy
}

// Finish closes any open busy intervals at the end of the run and freezes
// the accumulator: later SetBusy calls are ignored so post-window activity
// (the engine's grace window) cannot leak into the totals.
func (u *Utilization) Finish(now sim.Time) {
	for c := range u.busy {
		if u.busy[c] {
			u.busyTotal[c] += now.Sub(u.busySince[c])
			u.busySince[c] = now
		}
	}
	u.finished = true
}

// BusyCores reports the time-averaged number of busy cores over a run of
// the given length.
func (u *Utilization) BusyCores(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	var total sim.Duration
	for _, b := range u.busyTotal {
		total += b
	}
	return float64(total) / float64(elapsed)
}

// CoreBusy reports one core's accumulated busy time (closed intervals
// only until Finish is called).
func (u *Utilization) CoreBusy(core int) sim.Duration {
	return u.busyTotal[core]
}

// CoreBusyFraction reports one core's busy fraction.
func (u *Utilization) CoreBusyFraction(core int, elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(u.busyTotal[core]) / float64(elapsed)
}

// Throughput counts completed batch jobs.
type Throughput struct {
	jobs uint64
}

// AddJob records one completed job.
func (t *Throughput) AddJob() { t.jobs++ }

// Jobs reports completed jobs.
func (t *Throughput) Jobs() uint64 { return t.jobs }

// PerSecond reports jobs per simulated second.
func (t *Throughput) PerSecond(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(t.jobs) / elapsed.Seconds()
}

// Breakdown accumulates the components of request time (Figure 6):
// hypervisor/controller core re-assignment, cache/TLB flush and
// invalidation, and execution (including queueing and cold-start
// stretching).
type Breakdown struct {
	Reassign  sim.Duration
	Flush     sim.Duration
	Execution sim.Duration
	Requests  uint64
}

// AddRequest folds one request's components into the accumulator.
func (b *Breakdown) AddRequest(reassign, flush, execution sim.Duration) {
	b.Reassign += reassign
	b.Flush += flush
	b.Execution += execution
	b.Requests++
}

// Mean reports the per-request mean of each component.
func (b *Breakdown) Mean() (reassign, flush, execution sim.Duration) {
	if b.Requests == 0 {
		return 0, 0, 0
	}
	n := sim.Duration(b.Requests)
	return b.Reassign / n, b.Flush / n, b.Execution / n
}

// MeanTotal reports the mean total request time.
func (b *Breakdown) MeanTotal() sim.Duration {
	r, f, e := b.Mean()
	return r + f + e
}
