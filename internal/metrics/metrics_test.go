package metrics

import (
	"testing"

	"hardharvest/internal/sim"
)

func TestLatencyRecorder(t *testing.T) {
	l := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		l.Add(sim.Duration(i) * sim.Microsecond)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if p := l.P50(); p < 50*sim.Microsecond || p > 51*sim.Microsecond {
		t.Fatalf("P50 = %v", p)
	}
	if p := l.P99(); p < 99*sim.Microsecond || p > 100*sim.Microsecond {
		t.Fatalf("P99 = %v", p)
	}
	if l.Max() != 100*sim.Microsecond {
		t.Fatalf("Max = %v", l.Max())
	}
	if m := l.Mean(); m < 50*sim.Microsecond || m > 51*sim.Microsecond {
		t.Fatalf("Mean = %v", m)
	}
}

func TestUtilizationIntegration(t *testing.T) {
	u := NewUtilization(2)
	// Core 0 busy for 60 of 100 us; core 1 busy for 100.
	u.SetBusy(0, 0, true)
	u.SetBusy(1, 0, true)
	u.SetBusy(0, sim.Time(60*sim.Microsecond), false)
	u.Finish(sim.Time(100 * sim.Microsecond))
	got := u.BusyCores(100 * sim.Microsecond)
	if got < 1.59 || got > 1.61 {
		t.Fatalf("busy cores = %v, want 1.6", got)
	}
	if f := u.CoreBusyFraction(0, 100*sim.Microsecond); f < 0.59 || f > 0.61 {
		t.Fatalf("core 0 fraction = %v", f)
	}
}

func TestUtilizationRedundantTransitions(t *testing.T) {
	u := NewUtilization(1)
	u.SetBusy(0, 0, true)
	u.SetBusy(0, sim.Time(10*sim.Microsecond), true) // redundant
	u.SetBusy(0, sim.Time(50*sim.Microsecond), false)
	u.SetBusy(0, sim.Time(60*sim.Microsecond), false) // redundant
	u.Finish(sim.Time(100 * sim.Microsecond))
	if f := u.CoreBusyFraction(0, 100*sim.Microsecond); f < 0.49 || f > 0.51 {
		t.Fatalf("fraction = %v, want 0.5", f)
	}
}

func TestUtilizationFinishFreezes(t *testing.T) {
	u := NewUtilization(1)
	u.SetBusy(0, 0, true)
	u.Finish(sim.Time(100 * sim.Microsecond))
	// Post-window activity (the engine's grace period) must not leak in.
	u.SetBusy(0, sim.Time(100*sim.Microsecond), false)
	u.SetBusy(0, sim.Time(150*sim.Microsecond), true)
	u.SetBusy(0, sim.Time(200*sim.Microsecond), false)
	if f := u.CoreBusyFraction(0, 100*sim.Microsecond); f != 1.0 {
		t.Fatalf("fraction = %v, want exactly 1.0 after freeze", f)
	}
	if got := u.BusyCores(100 * sim.Microsecond); got != 1.0 {
		t.Fatalf("busy cores = %v, want 1.0", got)
	}
}

func TestUtilizationZeroElapsed(t *testing.T) {
	u := NewUtilization(1)
	if u.BusyCores(0) != 0 || u.CoreBusyFraction(0, 0) != 0 {
		t.Fatal("zero elapsed should report zero")
	}
}

func TestThroughput(t *testing.T) {
	var th Throughput
	for i := 0; i < 50; i++ {
		th.AddJob()
	}
	if th.Jobs() != 50 {
		t.Fatalf("jobs = %d", th.Jobs())
	}
	if got := th.PerSecond(500 * sim.Millisecond); got != 100 {
		t.Fatalf("per second = %v", got)
	}
	if th.PerSecond(0) != 0 {
		t.Fatal("zero elapsed throughput")
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.AddRequest(100*sim.Microsecond, 200*sim.Microsecond, 700*sim.Microsecond)
	b.AddRequest(300*sim.Microsecond, 0, 500*sim.Microsecond)
	r, f, e := b.Mean()
	if r != 200*sim.Microsecond || f != 100*sim.Microsecond || e != 600*sim.Microsecond {
		t.Fatalf("means = %v %v %v", r, f, e)
	}
	if b.MeanTotal() != 900*sim.Microsecond {
		t.Fatalf("mean total = %v", b.MeanTotal())
	}
	var empty Breakdown
	if empty.MeanTotal() != 0 {
		t.Fatal("empty breakdown should be zero")
	}
}

func TestBreakdownMeanZeroRequests(t *testing.T) {
	var b Breakdown
	r, f, e := b.Mean()
	if r != 0 || f != 0 || e != 0 {
		t.Fatalf("zero-request means = %v %v %v", r, f, e)
	}
	// Accumulated components without completions must not divide by zero.
	b.Reassign = 100 * sim.Microsecond
	if r, f, e = b.Mean(); r != 0 || f != 0 || e != 0 {
		t.Fatal("Mean must stay zero while Requests == 0")
	}
}

func TestLatencyRecorderEmpty(t *testing.T) {
	l := NewLatencyRecorder()
	if l.Count() != 0 {
		t.Fatalf("count = %d", l.Count())
	}
	if l.SampleLatency(0.5) != 0 {
		t.Fatal("sampling an empty recorder must report 0")
	}
	if l.P50() != 0 || l.P99() != 0 || l.Mean() != 0 || l.Max() != 0 {
		t.Fatal("empty recorder statistics must be zero")
	}
}

// TestLatencySketchMode drives the sketch-backed recorder through the same
// interface the exact one implements: quantiles within the sketch's bounded
// relative error, exact count/mean/max.
func TestLatencySketchMode(t *testing.T) {
	l := NewLatencySketch()
	if !l.Sketched() {
		t.Fatal("NewLatencySketch not in sketch mode")
	}
	if NewLatencyRecorder().Sketched() {
		t.Fatal("NewLatencyRecorder reports sketch mode")
	}
	for i := 1; i <= 100; i++ {
		l.Add(sim.Duration(i) * sim.Microsecond)
	}
	l.Freeze() // no-op in sketch mode, must not panic
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if p := l.P50(); p < 49*sim.Microsecond || p > 52*sim.Microsecond {
		t.Fatalf("P50 = %v", p)
	}
	if p := l.P99(); p < 97*sim.Microsecond || p > 101*sim.Microsecond {
		t.Fatalf("P99 = %v", p)
	}
	if l.Max() != 100*sim.Microsecond {
		t.Fatalf("Max = %v (sketch max is exact)", l.Max())
	}
	if m := l.Mean(); m < 50*sim.Microsecond || m > 51*sim.Microsecond {
		t.Fatalf("Mean = %v (sketch mean is exact)", m)
	}
	if s := l.SampleLatency(0); s != 1*sim.Microsecond {
		t.Fatalf("SampleLatency(0) = %v, want exact min", s)
	}
	if s := l.SampleLatency(0.999999); s != 100*sim.Microsecond {
		t.Fatalf("SampleLatency(~1) = %v, want exact max", s)
	}
}

// TestLatencyMergeModes pins the cross-mode merge contract: exact recorders
// fold into sketches losslessly (identical to adding the samples directly);
// folding a sketch into an exact recorder panics.
func TestLatencyMergeModes(t *testing.T) {
	exact := NewLatencyRecorder()
	direct := NewLatencySketch()
	for i := 1; i <= 1000; i++ {
		d := sim.Duration(i*i) * sim.Nanosecond
		exact.Add(d)
		direct.Add(d)
	}

	viaMerge := NewLatencySketch()
	viaMerge.Merge(exact)
	if viaMerge.Count() != direct.Count() ||
		viaMerge.P50() != direct.P50() ||
		viaMerge.P99() != direct.P99() ||
		viaMerge.Max() != direct.Max() {
		t.Fatalf("exact->sketch merge differs from direct adds: merged p99=%v direct p99=%v",
			viaMerge.P99(), direct.P99())
	}

	skA, skB := NewLatencySketch(), NewLatencySketch()
	skA.Add(10 * sim.Microsecond)
	skB.Add(30 * sim.Microsecond)
	skA.Merge(skB)
	if skA.Count() != 2 || skA.Max() != 30*sim.Microsecond {
		t.Fatalf("sketch-sketch merge wrong: n=%d max=%v", skA.Count(), skA.Max())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("merging a sketch into an exact recorder did not panic")
		}
	}()
	NewLatencyRecorder().Merge(skA)
}
