package serve

import (
	"fmt"
	"sort"
	"strings"

	"hardharvest/internal/cluster"
	"hardharvest/internal/obs"
)

// renderSummary is the single end-of-run renderer shared by the live loop
// and Replay: the byte-replayability guarantee compares its output, so the
// summary must be a pure function of the inputs — no wall-clock, no map
// iteration order, no pointers.
func renderSummary(cfg RunConfig, res *cluster.ServerResult, c obs.Counters, h *obs.LatencyHist, actions int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== hhsim serve summary ==\n")
	fmt.Fprintf(&b, "system=%s workload=%s seed=%d warmup=%dms measure=%dms step=%dms actions=%d\n",
		cfg.System, cfg.Workload, cfg.Seed, cfg.WarmupMS, cfg.SimMS, cfg.StepMS, actions)
	fmt.Fprintf(&b, "result: %s\n", res)
	names := make([]string, 0, len(res.Service))
	for name := range res.Service {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := res.Service[name]
		fmt.Fprintf(&b, "  %-10s p50=%-12v p99=%v\n", name, rec.P50(), rec.P99())
	}
	fmt.Fprintf(&b, "jobs=%d (%.0f/s) busy=%.2f pins=%d\n",
		res.HarvestJobs, res.HarvestJobsPerSec, res.BusyCores, res.Pins)
	fmt.Fprintf(&b, "counters: %s\n", c)
	fmt.Fprintf(&b, "latency:  %s\n", h)
	if res.InvariantViolations > 0 {
		fmt.Fprintf(&b, "INVARIANT VIOLATIONS: %d (first: %s)\n",
			res.InvariantViolations, res.FirstViolation)
	}
	return b.String()
}
