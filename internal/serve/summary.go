package serve

import (
	"fmt"
	"sort"
	"strings"

	"hardharvest/internal/cluster"
	"hardharvest/internal/graph"
	"hardharvest/internal/obs"
	"hardharvest/internal/route"
	"hardharvest/internal/validate"
)

// renderSummary is the single end-of-run renderer shared by the live loop
// and Replay: the byte-replayability guarantee compares its output, so the
// summary must be a pure function of the inputs — no wall-clock, no map
// iteration order, no pointers.
func renderSummary(cfg RunConfig, res *cluster.ServerResult, c obs.Counters, h *obs.LatencyHist, actions int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== hhsim serve summary ==\n")
	fmt.Fprintf(&b, "system=%s workload=%s seed=%d warmup=%dms measure=%dms step=%dms actions=%d\n",
		cfg.System, cfg.Workload, cfg.Seed, cfg.WarmupMS, cfg.SimMS, cfg.StepMS, actions)
	fmt.Fprintf(&b, "result: %s\n", res)
	names := make([]string, 0, len(res.Service))
	for name := range res.Service {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := res.Service[name]
		fmt.Fprintf(&b, "  %-10s p50=%-12v p99=%v\n", name, rec.P50(), rec.P99())
	}
	fmt.Fprintf(&b, "jobs=%d (%.0f/s) busy=%.2f pins=%d\n",
		res.HarvestJobs, res.HarvestJobsPerSec, res.BusyCores, res.Pins)
	fmt.Fprintf(&b, "counters: %s\n", c)
	fmt.Fprintf(&b, "latency:  %s\n", h)
	if res.InvariantViolations > 0 {
		fmt.Fprintf(&b, "INVARIANT VIOLATIONS: %d (first: %s)\n",
			res.InvariantViolations, res.FirstViolation)
	}
	return b.String()
}

// renderGraphSummary is renderSummary's DAG-mode counterpart: per-server
// results, the dispatcher's request/RPC ledgers, per-tier hop latencies,
// the end-to-end tail, and the graph-conservation verdict. The same purity
// rules apply — graph replay byte-equivalence compares this output.
func renderGraphSummary(cfg RunConfig, results []*cluster.ServerResult, meters []*obs.Meter, gr *graph.Result, actions int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== hhsim serve summary (graph) ==\n")
	fmt.Fprintf(&b, "system=%s workload=%s seed=%d warmup=%dms measure=%dms step=%dms actions=%d\n",
		cfg.System, cfg.Workload, cfg.Seed, cfg.WarmupMS, cfg.SimMS, cfg.StepMS, actions)
	fmt.Fprintf(&b, "graph: %s tiers=%d servers=%d\n", cfg.Graph, len(gr.Tiers), len(results))
	agg := obs.Counters{}
	merged := obs.NewLatencyHist()
	for i, res := range results {
		c := meters[i].Counters()
		agg.Add(&c)
		merged.Merge(meters[i].Hist())
		fmt.Fprintf(&b, "server %d\n", i)
		fmt.Fprintf(&b, "  result: %s\n", res)
		fmt.Fprintf(&b, "  counters: %s\n", c)
		fmt.Fprintf(&b, "  latency:  %s\n", meters[i].Hist())
		if res.InvariantViolations > 0 {
			fmt.Fprintf(&b, "  INVARIANT VIOLATIONS: %d (first: %s)\n",
				res.InvariantViolations, res.FirstViolation)
		}
	}
	fmt.Fprintf(&b, "dag: generated=%d completed=%d failed=%d inflight=%d\n",
		gr.Generated, gr.Completed, gr.Failed, gr.InflightEnd)
	fmt.Fprintf(&b, "  rpcs: dispatched=%d done=%d shed=%d outstanding=%d\n",
		gr.Dispatches, gr.DoneRecv, gr.ShedRecv, gr.OutstandingEnd)
	fmt.Fprintf(&b, "  e2e latency: p50=%.3fms p99=%.3fms n=%d\n",
		gr.E2E.P50(), gr.E2E.P99(), gr.E2E.Count())
	for _, tr := range gr.Tiers {
		fmt.Fprintf(&b, "  tier %s servers=%d vm=%d rpcs=%d done=%d shed=%d hop_p50=%.3fms hop_p99=%.3fms\n",
			tr.Name, tr.Servers, tr.VM, tr.Dispatches, tr.Dones, tr.Sheds,
			tr.Hop.P50(), tr.Hop.P99())
	}
	fmt.Fprintf(&b, "fleet counters: %s\n", agg)
	fmt.Fprintf(&b, "fleet latency:  %s\n", merged)
	fmt.Fprintf(&b, "oracle: %s\n", validate.GraphResultConservation("graph_conservation", gr))
	return b.String()
}

// renderRoutedSummary is renderSummary's fleet-mode counterpart: per-backend
// server results, the router's request/attempt/health ledgers, fleet-
// aggregated counters and latency, and the fleet-conservation verdict. The
// same purity rules apply — routed replay byte-equivalence compares this
// output.
func renderRoutedSummary(cfg RunConfig, results []*cluster.ServerResult, meters []*obs.Meter, fr *route.Result, actions int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== hhsim serve summary (routed) ==\n")
	fmt.Fprintf(&b, "system=%s workload=%s seed=%d warmup=%dms measure=%dms step=%dms actions=%d\n",
		cfg.System, cfg.Workload, cfg.Seed, cfg.WarmupMS, cfg.SimMS, cfg.StepMS, actions)
	fmt.Fprintf(&b, "fleet: backends=%d policy=%s\n", len(results), fr.Policy)
	agg := obs.Counters{}
	merged := obs.NewLatencyHist()
	for i, res := range results {
		c := meters[i].Counters()
		agg.Add(&c)
		merged.Merge(meters[i].Hist())
		fmt.Fprintf(&b, "server %d [%s]\n", i, fr.Backends[i].Name)
		fmt.Fprintf(&b, "  result: %s\n", res)
		fmt.Fprintf(&b, "  counters: %s\n", c)
		fmt.Fprintf(&b, "  latency:  %s\n", meters[i].Hist())
		if res.InvariantViolations > 0 {
			fmt.Fprintf(&b, "  INVARIANT VIOLATIONS: %d (first: %s)\n",
				res.InvariantViolations, res.FirstViolation)
		}
	}
	fmt.Fprintf(&b, "router: generated=%d dispatched=%d (initial=%d failovers=%d) completed=%d shed=%d lost=%d (at_admit=%d) inflight=%d\n",
		fr.Generated, fr.Dispatches, fr.InitialDispatches, fr.Failovers,
		fr.Completions, fr.Sheds, fr.Lost, fr.LostAtAdmit, fr.InflightEnd)
	fmt.Fprintf(&b, "  replies: done=%d shed=%d zombie_dones=%d zombie_sheds=%d outstanding=%d\n",
		fr.DoneRecv, fr.ShedRecv, fr.ZombieDones, fr.ZombieSheds, fr.OutstandingEnd)
	fmt.Fprintf(&b, "  health: probes=%d fails=%d ejections=%d readmits=%d drains=%d\n",
		fr.Probes, fr.ProbeFails, fr.Ejections, fr.Readmits, fr.Drains)
	fmt.Fprintf(&b, "  fleet latency: p50=%.3fms p99=%.3fms n=%d\n",
		fr.FleetLatency.P50(), fr.FleetLatency.P99(), fr.FleetLatency.Count())
	for _, br := range fr.Backends {
		fmt.Fprintf(&b, "  backend %s state=%s dispatched=%d done=%d shed=%d zombies=%d failovers_out=%d lost=%d unhealthy_spells=%d crashes=%d edge_p99=%.3fms\n",
			br.Name, br.State, br.Dispatches, br.Dones, br.Sheds,
			br.ZombieDones+br.ZombieSheds, br.FailoversOut, br.Lost,
			br.UnhealthySpells, br.Crashes, br.EdgeLatency.P99())
	}
	fmt.Fprintf(&b, "fleet counters: %s\n", agg)
	fmt.Fprintf(&b, "fleet latency:  %s\n", merged)
	fmt.Fprintf(&b, "oracle: %s\n", fr.Conservation("fleet_conservation"))
	return b.String()
}
