package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// ---- hand-rolled Prometheus text-exposition (0.0.4) parser ----
//
// Deliberately no dependency on a client library: the parser accepts only
// what the format specifies, so it doubles as a well-formedness check on
// everything /metrics emits.

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promFamily struct {
	name, help, typ string
	samples         []promSample
}

// parseExposition parses the full scrape body, failing the test on any
// malformed line, sample without a preceding # TYPE, or duplicate series.
func parseExposition(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	seen := map[string]bool{} // name + rendered labels
	sc := bufio.NewScanner(strings.NewReader(text))
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln, line)
			}
			f := fams[name]
			if f == nil {
				f = &promFamily{name: name}
				fams[name] = f
			}
			f.help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram" && typ != "summary" && typ != "untyped") {
				t.Fatalf("line %d: bad TYPE: %q", ln, line)
			}
			f := fams[name]
			if f == nil {
				f = &promFamily{name: name}
				fams[name] = f
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln, line)
		}
		s, err := parseSample(line)
		if err != nil {
			t.Fatalf("line %d: %v: %q", ln, err, line)
		}
		fam := familyOf(fams, s.name)
		if fam == nil || fam.typ == "" {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln, s.name)
		}
		key := s.name + renderLabels(s.labels)
		if seen[key] {
			t.Fatalf("line %d: duplicate series %q", ln, key)
		}
		seen[key] = true
		fam.samples = append(fam.samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

// familyOf resolves a sample name to its family, honoring the histogram
// child-series suffixes.
func familyOf(fams map[string]*promFamily, name string) *promFamily {
	if f := fams[name]; f != nil {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := fams[base]; f != nil && f.typ == "histogram" {
				return f
			}
		}
	}
	return nil
}

func parseSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("no metric name")
	}
	s.name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		rest, err = parseLabels(rest[1:], s.labels)
		if err != nil {
			return s, err
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", rest)
	}
	s.value = v
	return s, nil
}

// parseLabels consumes `k="v",...}` handling \\, \" and \n escapes, and
// returns whatever follows the closing brace.
func parseLabels(rest string, into map[string]string) (string, error) {
	for {
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq <= 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return "", fmt.Errorf("bad label at %q", rest)
		}
		key := rest[:eq]
		rest = rest[eq+2:]
		var val strings.Builder
		for {
			if rest == "" {
				return "", fmt.Errorf("unterminated label value for %q", key)
			}
			c := rest[0]
			rest = rest[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if rest == "" {
					return "", fmt.Errorf("dangling escape in %q", key)
				}
				e := rest[0]
				rest = rest[1:]
				switch e {
				case '\\', '"':
					val.WriteByte(e)
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("bad escape \\%c in %q", e, key)
				}
				continue
			}
			val.WriteByte(c)
		}
		into[key] = val.String()
		rest = strings.TrimPrefix(rest, ",")
	}
}

func renderLabels(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "{%s=%q}", k, m[k])
	}
	return b.String()
}

// checkHistogram asserts cumulative-bucket monotonicity, the +Inf bucket,
// and bucket/count agreement for one histogram family.
func checkHistogram(t *testing.T, fams map[string]*promFamily, name string) {
	t.Helper()
	fam := fams[name]
	if fam == nil || fam.typ != "histogram" {
		t.Fatalf("%s: missing or not a histogram", name)
	}
	type bk struct {
		le float64
		n  float64
	}
	var buckets []bk
	var count, sum float64
	haveCount, haveInf := false, false
	for _, s := range fam.samples {
		switch s.name {
		case name + "_bucket":
			le := s.labels["le"]
			if le == "+Inf" {
				haveInf = true
				buckets = append(buckets, bk{math.Inf(1), s.value})
				continue
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s: bad le=%q", name, le)
			}
			buckets = append(buckets, bk{f, s.value})
		case name + "_count":
			count, haveCount = s.value, true
		case name + "_sum":
			sum = s.value
		}
	}
	if !haveInf || !haveCount {
		t.Fatalf("%s: missing +Inf bucket or _count", name)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	prev := -1.0
	for _, b := range buckets {
		if b.n < prev {
			t.Fatalf("%s: bucket le=%g count %g < previous %g (not cumulative)", name, b.le, b.n, prev)
		}
		prev = b.n
	}
	if inf := buckets[len(buckets)-1].n; inf != count {
		t.Fatalf("%s: +Inf bucket %g != _count %g", name, inf, count)
	}
	if count > 0 && sum < 0 {
		t.Fatalf("%s: negative _sum %g", name, sum)
	}
}

// ---- lifecycle test ----

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func sampleValue(t *testing.T, fams map[string]*promFamily, name string, want map[string]string) float64 {
	t.Helper()
	fam := familyOf(fams, name)
	if fam == nil {
		t.Fatalf("metric %s not exposed", name)
	}
outer:
	for _, s := range fam.samples {
		if s.name != name {
			continue
		}
		for k, v := range want {
			if s.labels[k] != v {
				continue outer
			}
		}
		return s.value
	}
	t.Fatalf("no sample %s%v", name, want)
	return 0
}

func TestHTTPLifecycle(t *testing.T) {
	cfg := quickCfg()
	r, err := NewRunner(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := r.Subscribe(4096)
	defer cancel()
	r.Pause()
	go r.Loop()
	ts := httptest.NewServer(NewHTTP(r))
	defer ts.Close()

	// Scrape 1: paused at t=0, well-formed exposition.
	fams := parseExposition(t, getBody(t, ts.URL+"/metrics"))
	checkHistogram(t, fams, "hhsim_request_latency_seconds")
	if v := sampleValue(t, fams, "hhsim_paused", nil); v != 1 {
		t.Fatalf("hhsim_paused = %g, want 1", v)
	}
	simT0 := sampleValue(t, fams, "hhsim_sim_time_seconds", nil)
	arr0 := sampleValue(t, fams, "hhsim_events_total", map[string]string{"kind": "arrivals"})
	if v := sampleValue(t, fams, "hhsim_info", map[string]string{
		"system": cfg.System, "workload": cfg.Workload, "seed": "3"}); v != 1 {
		t.Fatalf("hhsim_info = %g, want 1", v)
	}
	for _, name := range []string{"hhsim_sim_horizon_seconds", "hhsim_run_done",
		"hhsim_intensity", "hhsim_engine_events_total", "hhsim_actions_applied_total",
		"hhsim_vm_occupancy"} {
		if familyOf(fams, name) == nil {
			t.Fatalf("metric %s not exposed", name)
		}
	}

	// Queue a config change over HTTP, then advance two barriers.
	if code, body := post(t, ts.URL+"/api/config", `{"intensity": 2.0, "resilience": true}`); code != http.StatusAccepted {
		t.Fatalf("config POST: %d: %s", code, body)
	}
	for i := 0; i < 2; i++ {
		if code, body := post(t, ts.URL+"/api/step", ""); code != http.StatusOK {
			t.Fatalf("step POST: %d: %s", code, body)
		}
		<-ch
	}

	// Scrape 2: time and counters moved monotonically, actions applied.
	fams2 := parseExposition(t, getBody(t, ts.URL+"/metrics"))
	checkHistogram(t, fams2, "hhsim_request_latency_seconds")
	simT1 := sampleValue(t, fams2, "hhsim_sim_time_seconds", nil)
	if simT1 <= simT0 {
		t.Fatalf("sim time did not advance: %g -> %g", simT0, simT1)
	}
	arr1 := sampleValue(t, fams2, "hhsim_events_total", map[string]string{"kind": "arrivals"})
	if arr1 < arr0 || arr1 == 0 {
		t.Fatalf("arrivals counter not monotone/active: %g -> %g", arr0, arr1)
	}
	if v := sampleValue(t, fams2, "hhsim_actions_applied_total", nil); v != 2 {
		t.Fatalf("hhsim_actions_applied_total = %g, want 2", v)
	}
	if v := sampleValue(t, fams2, "hhsim_intensity", nil); v != 2 {
		t.Fatalf("hhsim_intensity = %g, want 2", v)
	}

	// /api/state agrees with the scrape.
	var st struct {
		SimMS   float64 `json:"sim_ms"`
		Paused  bool    `json:"paused"`
		Actions int     `json:"actions"`
		VMs     []struct {
			Name string `json:"name"`
		} `json:"vms"`
	}
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/api/state")), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Paused || st.Actions != 2 || st.SimMS/1000 != simT1 || len(st.VMs) == 0 {
		t.Fatalf("state mismatch: %+v (sim_time_seconds=%g)", st, simT1)
	}

	// Malformed / rejected requests.
	if code, _ := post(t, ts.URL+"/api/config", `{`); code != http.StatusBadRequest {
		t.Fatalf("truncated body: %d, want 400", code)
	}
	if code, _ := post(t, ts.URL+"/api/config", `{}`); code != http.StatusBadRequest {
		t.Fatalf("empty config: %d, want 400", code)
	}
	if code, _ := post(t, ts.URL+"/api/config", `{"intensity": -1}`); code != http.StatusBadRequest {
		t.Fatalf("bad intensity: %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/api/step")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/step: %d, want 405", resp.StatusCode)
	}

	// Resume and stream the rest of the run as NDJSON.
	tsResp, err := http.Get(ts.URL + "/api/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	defer tsResp.Body.Close()
	if ct := tsResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("timeseries Content-Type = %q", ct)
	}
	if code, body := post(t, ts.URL+"/api/resume", ""); code != http.StatusOK {
		t.Fatalf("resume POST: %d: %s", code, body)
	}
	var last TimePoint
	points := 0
	dec := json.NewDecoder(tsResp.Body)
	for {
		var tp TimePoint
		if err := dec.Decode(&tp); err != nil {
			t.Fatalf("timeseries decode after %d points: %v", points, err)
		}
		points++
		last = tp
		if tp.Done {
			break
		}
	}
	if points == 0 || !last.Done {
		t.Fatalf("timeseries ended early: %d points, done=%v", points, last.Done)
	}
	for tp := range ch { // drain our own subscription to the end of the run
		if tp.Done {
			break
		}
	}

	// Final scrape: run done, step now refused, then shutdown.
	fams3 := parseExposition(t, getBody(t, ts.URL+"/metrics"))
	if v := sampleValue(t, fams3, "hhsim_run_done", nil); v != 1 {
		t.Fatalf("hhsim_run_done = %g, want 1", v)
	}
	// At done the engine reports the last fired event's time, which sits at
	// or just below the horizon (the grace tail rarely runs right up to it).
	if v, h := sampleValue(t, fams3, "hhsim_sim_time_seconds", nil),
		sampleValue(t, fams3, "hhsim_sim_horizon_seconds", nil); v > h || v <= simT1 {
		t.Fatalf("done but sim time %g outside (%g, %g]", v, simT1, h)
	}
	if _, ok := r.Summary(); !ok {
		t.Fatal("no summary after completed run")
	}
	if code, body := post(t, ts.URL+"/api/shutdown", ""); code != http.StatusOK {
		t.Fatalf("shutdown POST: %d: %s", code, body)
	}
	select {
	case <-r.ShutdownRequested():
	default:
		t.Fatal("shutdown not signalled")
	}
}

func TestTimeseriesSSE(t *testing.T) {
	cfg := quickCfg()
	cfg.SimMS = 30
	r, err := NewRunner(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Pause()
	go r.Loop()
	ts := httptest.NewServer(NewHTTP(r))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/timeseries", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	r.Resume()
	sc := bufio.NewScanner(resp.Body)
	events := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("non-SSE line: %q", line)
		}
		var tp TimePoint
		if err := json.Unmarshal([]byte(data), &tp); err != nil {
			t.Fatalf("bad SSE payload: %v: %q", err, data)
		}
		events++
		if tp.Done {
			break
		}
	}
	if events == 0 {
		t.Fatal("no SSE events received")
	}
}

// TestMetricsScrapeStableWhilePaused: two scrapes of an unchanged simulator
// must be byte-identical — CI's serve-smoke job relies on this property for
// its exposition diffing.
func TestMetricsScrapeStableWhilePaused(t *testing.T) {
	r, err := NewRunner(quickCfg(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Pause()
	go r.Loop()
	ts := httptest.NewServer(NewHTTP(r))
	defer ts.Close()
	a := getBody(t, ts.URL+"/metrics")
	b := getBody(t, ts.URL+"/metrics")
	if !bytes.Equal([]byte(a), []byte(b)) {
		t.Fatal("paused scrapes differ")
	}
	r.Shutdown()
}

// TestHTTPRoutedSurfaces: routed runs expose the router on /api/state and
// /metrics, accept drain/targeted-fault config POSTs, and routerless runs
// keep both surfaces free of router artifacts.
func TestHTTPRoutedSurfaces(t *testing.T) {
	r, err := NewRunner(routedCfg(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := r.Subscribe(4096)
	defer cancel()
	r.Pause()
	go r.Loop()
	ts := httptest.NewServer(NewHTTP(r))
	defer ts.Close()

	// Queue a drain over HTTP, then advance two barriers so it applies.
	if code, body := post(t, ts.URL+"/api/config", `{"server": 1, "drain_deadline_ms": 3}`); code != http.StatusAccepted {
		t.Fatalf("drain POST: %d: %s", code, body)
	}
	for i := 0; i < 2; i++ {
		if code, body := post(t, ts.URL+"/api/step", ""); code != http.StatusOK {
			t.Fatalf("step POST: %d: %s", code, body)
		}
		<-ch
	}

	var st struct {
		Router *RouterPoint `json:"router"`
	}
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/api/state")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Router == nil {
		t.Fatal("routed /api/state has no router block")
	}
	if st.Router.Policy != "least_outstanding" || len(st.Router.Backends) != 3 {
		t.Fatalf("router block mismatch: %+v", st.Router)
	}
	if st.Router.Drains != 1 {
		t.Fatalf("drain not applied: %+v", st.Router)
	}

	fams := parseExposition(t, getBody(t, ts.URL+"/metrics"))
	if v := sampleValue(t, fams, "hhsim_router_health_total", map[string]string{"kind": "drains"}); v != 1 {
		t.Fatalf("hhsim_router_health_total{kind=drains} = %g, want 1", v)
	}
	if v := sampleValue(t, fams, "hhsim_router_backend_up", map[string]string{"backend": "server0", "state": "healthy"}); v != 1 {
		t.Fatalf("server0 not up: %g", v)
	}
	for _, name := range []string{"hhsim_router_requests_total", "hhsim_router_outstanding",
		"hhsim_router_fleet_latency_ms", "hhsim_router_backend_attempts_total",
		"hhsim_router_backend_active"} {
		if familyOf(fams, name) == nil {
			t.Fatalf("metric %s not exposed", name)
		}
	}
	r.Shutdown()

	// Routerless surfaces stay clean: no router JSON key, no router families.
	plain, err := NewRunner(quickCfg(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain.Pause()
	go plain.Loop()
	ts2 := httptest.NewServer(NewHTTP(plain))
	defer ts2.Close()
	if body := getBody(t, ts2.URL+"/api/state"); strings.Contains(body, `"router"`) {
		t.Fatalf("routerless state leaked a router block:\n%s", body)
	}
	if body := getBody(t, ts2.URL+"/metrics"); strings.Contains(body, "hhsim_router_") {
		t.Fatalf("routerless scrape leaked router families:\n%s", body)
	}
	if code, body := post(t, ts2.URL+"/api/config", `{"server": 1, "drain_deadline_ms": 3}`); code != http.StatusAccepted {
		// Enqueue-time validation is config-independent; the apply-time drop
		// is covered in serve_test. Accepting here is the expected contract.
		t.Fatalf("drain POST enqueue: %d: %s", code, body)
	}
	plain.Shutdown()
}
