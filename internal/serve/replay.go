package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"hardharvest/internal/jsonx"
	"hardharvest/internal/sim"
)

// Replay reconstructs a served run from its action log: the header line
// rebuilds the simulation, and each action is re-applied at its logged
// barrier while the same barrier loop drives the engine to the horizon.
// Because action application is a pure function of (config, action, barrier
// time) and stepping is event-sequence-identical to a monolithic run, the
// returned summary is byte-identical to the one the live run printed.
func Replay(rd io.Reader) (string, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22) // fault plans can be large
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return "", fmt.Errorf("serve: replay: %w", err)
		}
		return "", fmt.Errorf("serve: replay: empty action log")
	}
	// Malformed JSON and a well-formed header with the wrong magic are
	// different operator mistakes (a corrupted log vs. not an action log at
	// all), so they get distinct, line-numbered diagnostics.
	var hdr logHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return "", fmt.Errorf("serve: replay: line 1: malformed header JSON: %s",
			jsonx.DescribeError(sc.Bytes(), err))
	}
	if hdr.Magic != 1 {
		return "", fmt.Errorf("serve: replay: line 1: not an hhsim serve action log "+
			"(want hhsim_serve_log=1, got %q)", bytes.TrimSpace(sc.Bytes()))
	}
	var actions []Action
	for line := 2; sc.Scan(); line++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var a Action
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			return "", fmt.Errorf("serve: replay: line %d: malformed action JSON: %s",
				line, jsonx.DescribeError(sc.Bytes(), err))
		}
		if err := a.validate(); err != nil {
			return "", fmt.Errorf("serve: replay: line %d: %w", line, err)
		}
		if n := len(actions); n > 0 && a.At < actions[n-1].At {
			return "", fmt.Errorf("serve: replay: line %d: actions out of order at t=%dps", line, a.At)
		}
		actions = append(actions, a)
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("serve: replay: %w", err)
	}
	return ReplayActions(hdr.Config, actions)
}

// ReplayActions drives cfg to completion, applying each action at its
// recorded barrier, and returns the deterministic summary. A nil/empty
// action list replays a zero-action run — the batch-equivalence baseline.
func ReplayActions(cfg RunConfig, actions []Action) (string, error) {
	r, err := NewRunner(cfg, nil, 0)
	if err != nil {
		return "", err
	}
	step := r.step
	next := 0
	barrier := sim.Time(0)
	for {
		for next < len(actions) && actions[next].At == int64(barrier) {
			a := actions[next]
			if err := r.applyAction(a, barrier); err != nil {
				return "", fmt.Errorf("serve: replay at t=%v: %w", barrier, err)
			}
			r.applied++
			next++
		}
		if next < len(actions) && actions[next].At < int64(barrier) {
			return "", fmt.Errorf("serve: replay: action at t=%dps is not on a %v barrier",
				actions[next].At, step)
		}
		nb := barrier.Add(step)
		if h := r.srv.Horizon(); nb > h {
			nb = h
		}
		if r.stepTo(nb) {
			break
		}
		barrier = nb
	}
	if next < len(actions) {
		return "", fmt.Errorf("serve: replay: %d actions logged past the horizon", len(actions)-next)
	}
	return r.renderFinish(), nil
}
