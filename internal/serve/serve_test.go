package serve

import (
	"bytes"
	"strings"
	"testing"

	"hardharvest/internal/faults"
)

// quickCfg is a small-but-real run: full system, short windows.
func quickCfg() RunConfig {
	return RunConfig{
		System:   "HardHarvest-Block",
		Workload: "BFS",
		Seed:     3,
		WarmupMS: 10,
		SimMS:    60,
		StepMS:   10,
	}
}

// TestStepEquivalenceZeroActions is the serve determinism cornerstone: a
// zero-action served run (barrier-stepped, meter attached, occupancy polled
// at every barrier) must produce a summary byte-identical to the monolithic
// batch run of the same configuration.
func TestStepEquivalenceZeroActions(t *testing.T) {
	cfg := quickCfg()

	// Batch baseline: one Run over the whole horizon.
	srv, meter, err := cfg.build()
	if err != nil {
		t.Fatal(err)
	}
	res := srv.Run()
	batch := renderSummary(cfg, res, meter.Counters(), meter.Hist(), 0)

	// Served: the replay path drives the identical barrier loop a live
	// runner uses.
	stepped, err := ReplayActions(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stepped != batch {
		t.Fatalf("stepped run diverged from batch run:\n--- batch ---\n%s--- stepped ---\n%s", batch, stepped)
	}
	if !strings.Contains(batch, "counters: arrivals=") {
		t.Fatalf("summary shape unexpected:\n%s", batch)
	}
}

// TestStepEquivalenceAcrossStepSizes: the barrier cadence is a wall-clock
// detail — it must never leak into simulation results.
func TestStepEquivalenceAcrossStepSizes(t *testing.T) {
	a := quickCfg()
	b := quickCfg()
	b.StepMS = 3 // horizon is not a multiple: exercises the clamp
	sa, err := ReplayActions(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ReplayActions(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The step size appears in the header line; everything below it must
	// match exactly.
	trim := func(s string) string { return s[strings.Index(s, "\nresult:"):] }
	if trim(sa) != trim(sb) {
		t.Fatalf("step size changed simulation results:\n--- 10ms ---\n%s--- 3ms ---\n%s", sa, sb)
	}
}

// liveRun drives a live runner with a deterministic action schedule using
// the pause/step controls, returning its summary and action log.
func liveRun(t *testing.T, cfg RunConfig) (string, *bytes.Buffer) {
	t.Helper()
	var log bytes.Buffer
	r, err := NewRunner(cfg, &log, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := r.Subscribe(4096)
	defer cancel()
	r.Pause()
	go r.Loop()

	// Applied at barrier t=0 (enqueued before the step grant).
	mustEnqueue(t, r, Action{Kind: ActIntensity, Intensity: 1.5})
	step := func() {
		if err := r.StepBarrier(); err != nil {
			t.Fatal(err)
		}
		<-ch
	}
	step() // -> 10ms
	step() // -> 20ms
	// Applied at barrier t=20ms.
	mustEnqueue(t, r, Action{Kind: ActResilience, On: true})
	mustEnqueue(t, r, Action{Kind: ActFaults, Plan: &faults.Plan{
		Events: []faults.ScriptedEvent{{AtMS: 5, Kind: "core_offline", Core: 3, DurationMS: 8}},
	}})
	step() // -> 30ms
	// Applied at barrier t=30ms.
	mustEnqueue(t, r, Action{Kind: ActHarvestOnBlock, On: false})
	r.Resume()
	for tp := range ch {
		if tp.Done {
			break
		}
	}
	summary, ok := r.Summary()
	if !ok {
		t.Fatal("run finished without a summary")
	}
	return summary, &log
}

func mustEnqueue(t *testing.T, r *Runner, a Action) {
	t.Helper()
	if err := r.Enqueue(a); err != nil {
		t.Fatal(err)
	}
}

// TestReplayDeterminismWithActions: a served run with intensity, policy,
// and fault-plan actions must replay byte-identically from its action log.
func TestReplayDeterminismWithActions(t *testing.T) {
	cfg := quickCfg()
	live, log := liveRun(t, cfg)
	logCopy := log.String()

	replayed, err := Replay(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("replay failed: %v\nlog:\n%s", err, logCopy)
	}
	if replayed != live {
		t.Fatalf("replay diverged from live run:\n--- live ---\n%s--- replay ---\n%s\nlog:\n%s",
			live, replayed, logCopy)
	}

	// The actions must have moved the simulation: the same config with no
	// actions ends elsewhere (faults counter if nothing else).
	plain, err := ReplayActions(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain == live {
		t.Fatal("action run is identical to the zero-action run: actions were lost")
	}
	if !strings.Contains(live, "faults=1") {
		t.Fatalf("injected fault not reflected in counters:\n%s", live)
	}

	// Log shape: header plus four applied actions at their barrier times.
	lines := strings.Split(strings.TrimSpace(logCopy), "\n")
	if len(lines) != 5 {
		t.Fatalf("log has %d lines, want header+4 actions:\n%s", len(lines), logCopy)
	}
	for _, frag := range []string{
		`"hhsim_serve_log":1`,
		`"at":0,"kind":"intensity","intensity":1.5`,
		`"at":20000000000,"kind":"resilience","on":true`,
		`"at":20000000000,"kind":"faults"`,
		`"at":30000000000,"kind":"harvest_on_block"`,
	} {
		if !strings.Contains(logCopy, frag) {
			t.Fatalf("log missing %q:\n%s", frag, logCopy)
		}
	}

	// Replay twice: same bytes again (no hidden state in Replay itself).
	again, err := Replay(strings.NewReader(logCopy))
	if err != nil {
		t.Fatal(err)
	}
	if again != replayed {
		t.Fatal("two replays of the same log disagree")
	}
}

// routedCfg is a small routed fleet: three backends behind the front door.
func routedCfg() RunConfig {
	cfg := quickCfg()
	cfg.Routed = true
	cfg.Backends = 3
	cfg.Policy = "least_outstanding"
	return cfg
}

// TestRoutedServeReplayDeterminism drives a live routed run through every
// routed action kind — fleet-wide intensity, a targeted crash, a targeted
// drain — and requires the action log to replay byte-identically.
func TestRoutedServeReplayDeterminism(t *testing.T) {
	cfg := routedCfg()
	var log bytes.Buffer
	r, err := NewRunner(cfg, &log, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := r.Subscribe(4096)
	defer cancel()
	r.Pause()
	go r.Loop()

	mustEnqueue(t, r, Action{Kind: ActIntensity, Intensity: 1.4})
	step := func() {
		if err := r.StepBarrier(); err != nil {
			t.Fatal(err)
		}
		<-ch
	}
	step() // -> 10ms
	mustEnqueue(t, r, Action{Kind: ActFaults, Server: 0, Plan: &faults.Plan{
		Events: []faults.ScriptedEvent{{AtMS: 5, Kind: "crash", DurationMS: 10}},
	}})
	step() // -> 20ms
	mustEnqueue(t, r, Action{Kind: ActDrain, Server: 2, DeadlineMS: 3})
	r.Resume()
	for tp := range ch {
		if tp.Done {
			break
		}
	}
	live, ok := r.Summary()
	if !ok {
		t.Fatal("routed run finished without a summary")
	}
	for _, frag := range []string{
		"== hhsim serve summary (routed) ==",
		"fleet: backends=3 policy=least_outstanding",
		"drains=1",
		"state=drained",
		"PASS fleet_conservation",
	} {
		if !strings.Contains(live, frag) {
			t.Fatalf("routed summary missing %q:\n%s", frag, live)
		}
	}

	replayed, err := Replay(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("routed replay failed: %v\nlog:\n%s", err, log.String())
	}
	if replayed != live {
		t.Fatalf("routed replay diverged from live run:\n--- live ---\n%s--- replay ---\n%s", live, replayed)
	}

	// The targeted actions must have moved the fleet: a zero-action routed
	// run ends elsewhere.
	plain, err := ReplayActions(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain == live {
		t.Fatal("routed action run is identical to the zero-action run: actions were lost")
	}
}

// TestRoutedActionTargeting pins the apply-time rules: routerless runs
// reject drains and nonzero server targets; routed runs reject out-of-range
// backends.
func TestRoutedActionTargeting(t *testing.T) {
	plain, err := NewRunner(quickCfg(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.applyAction(Action{Kind: ActDrain, DeadlineMS: 1}, 0); err == nil {
		t.Fatal("routerless run accepted a drain")
	}
	if err := plain.applyAction(Action{Kind: ActIntensity, Intensity: 2, Server: 1}, 0); err == nil {
		t.Fatal("routerless run accepted a server-targeted action")
	}

	routed, err := NewRunner(routedCfg(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := routed.applyAction(Action{Kind: ActDrain, Server: 9, DeadlineMS: 1}, 0); err == nil {
		t.Fatal("routed run accepted an out-of-range backend")
	}
	if err := routed.applyAction(Action{Kind: ActDrain, Server: 1, DeadlineMS: 1}, 0); err != nil {
		t.Fatalf("in-range drain rejected: %v", err)
	}
}

// TestRoutedConfigValidation covers the constructor's routed-mode checks.
func TestRoutedConfigValidation(t *testing.T) {
	bad := routedCfg()
	bad.Backends = 0
	if _, err := NewRunner(bad, nil, 0); err == nil {
		t.Fatal("routed run with 0 backends accepted")
	}
	bad = routedCfg()
	bad.Policy = "fastest_guess"
	if _, err := NewRunner(bad, nil, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := (Action{Kind: ActDrain, DeadlineMS: 0}).validate(); err == nil {
		t.Fatal("drain without a deadline accepted")
	}
	if err := (Action{Kind: ActIntensity, Intensity: 2, Server: -1}).validate(); err == nil {
		t.Fatal("negative server accepted")
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(strings.NewReader("")); err == nil {
		t.Fatal("empty log accepted")
	}
	if _, err := Replay(strings.NewReader("{\"not\":\"a header\"}\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	hdr := `{"hhsim_serve_log":1,"config":{"system":"HardHarvest-Block","workload":"BFS","seed":1,"warmup_ms":10,"sim_ms":20,"step_ms":10}}`
	if _, err := Replay(strings.NewReader(hdr + "\n" + `{"at":0,"kind":"nope"}` + "\n")); err == nil {
		t.Fatal("unknown action kind accepted")
	}
	if _, err := Replay(strings.NewReader(hdr + "\n" + `{"at":7,"kind":"intensity","intensity":2}` + "\n")); err == nil {
		t.Fatal("off-barrier action accepted")
	}
}

// TestReplayHeaderDiagnostics pins the split between the two header
// failure modes — malformed JSON and well-formed JSON that is not an
// action-log header — and the line numbering of action errors. Each case
// must produce a distinct, positioned message, not one opaque error.
func TestReplayHeaderDiagnostics(t *testing.T) {
	hdr := `{"hhsim_serve_log":1,"config":{"system":"HardHarvest-Block","workload":"BFS","seed":1,"warmup_ms":10,"sim_ms":20,"step_ms":10}}`
	cases := []struct {
		name string
		log  string
		want []string
	}{
		{
			name: "malformed header JSON",
			log:  "{\"hhsim_serve_log\": oops}\n",
			want: []string{"line 1", "malformed header JSON", "column"},
		},
		{
			name: "wrong magic",
			log:  "{\"hhsim_serve_log\":2}\n",
			want: []string{"line 1", "not an hhsim serve action log", "hhsim_serve_log=1"},
		},
		{
			name: "valid JSON, not a header at all",
			log:  "{\"intensity\":1.5}\n",
			want: []string{"line 1", "not an hhsim serve action log"},
		},
		{
			name: "malformed action line is numbered",
			log:  hdr + "\n" + `{"at":0,"kind":"intensity","intensity":2}` + "\n{broken\n",
			want: []string{"line 3", "malformed action JSON"},
		},
		{
			name: "invalid action line is numbered",
			log:  hdr + "\n" + `{"at":0,"kind":"nope"}` + "\n",
			want: []string{"line 2", "unknown action kind"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Replay(strings.NewReader(tc.log))
			if err == nil {
				t.Fatal("log unexpectedly replayed")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q missing %q", err, w)
				}
			}
		})
	}
}

func TestActionValidation(t *testing.T) {
	cfg := quickCfg()
	r, err := NewRunner(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Action{
		{Kind: ActIntensity, Intensity: 0},
		{Kind: ActIntensity, Intensity: -2},
		{Kind: ActFaults},
		{Kind: "warp_speed"},
	} {
		if err := r.Enqueue(a); err == nil {
			t.Fatalf("action %+v accepted", a)
		}
	}
	if err := r.StepBarrier(); err == nil {
		t.Fatal("step allowed while not paused")
	}
}

func TestParseSystem(t *testing.T) {
	if _, err := ParseSystem("HardHarvest-Block"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSystem("NoSuchSystem"); err == nil {
		t.Fatal("bad system name accepted")
	}
	if _, err := NewRunner(RunConfig{System: "x", Workload: "BFS", SimMS: 10, StepMS: 1}, nil, 0); err == nil {
		t.Fatal("runner built for unknown system")
	}
	if _, err := NewRunner(RunConfig{System: "NoHarvest", Workload: "BFS", SimMS: 10, StepMS: 0}, nil, 0); err == nil {
		t.Fatal("runner built with zero step")
	}
}
