package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hardharvest/internal/faults"
)

// graphCfg serves the built-in socialnet DAG: one server per tier group
// (frontend, logic, leaf) behind the graph dispatcher.
func graphCfg() RunConfig {
	cfg := quickCfg()
	cfg.Graph = "socialnet"
	cfg.Backends = 1
	return cfg
}

// TestGraphServeReplayDeterminism drives a live DAG run through every
// graph-applicable action kind — fleet intensity (root generators), a
// targeted fault, a fleet-wide harvest toggle — and requires the action
// log to replay byte-identically.
func TestGraphServeReplayDeterminism(t *testing.T) {
	cfg := graphCfg()
	var log bytes.Buffer
	r, err := NewRunner(cfg, &log, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := r.Subscribe(4096)
	defer cancel()
	r.Pause()
	go r.Loop()

	mustEnqueue(t, r, Action{Kind: ActIntensity, Intensity: 1.4})
	step := func() {
		if err := r.StepBarrier(); err != nil {
			t.Fatal(err)
		}
		<-ch
	}
	step() // -> 10ms
	mustEnqueue(t, r, Action{Kind: ActFaults, Server: 0, Plan: &faults.Plan{
		Events: []faults.ScriptedEvent{{AtMS: 5, Kind: "core_offline", Core: 3, DurationMS: 8}},
	}})
	step() // -> 20ms
	mustEnqueue(t, r, Action{Kind: ActHarvestOnBlock, On: false})
	r.Resume()
	for tp := range ch {
		if tp.Done {
			break
		}
	}
	live, ok := r.Summary()
	if !ok {
		t.Fatal("graph run finished without a summary")
	}
	for _, frag := range []string{
		"== hhsim serve summary (graph) ==",
		"graph: socialnet tiers=4 servers=3",
		"dag: generated=",
		"  rpcs: dispatched=",
		"  e2e latency: p50=",
		"  tier frontend servers=1 vm=0",
		"  tier logic servers=1 vm=0",
		"  tier cache servers=1 vm=0",
		"  tier db servers=1 vm=1",
		"fleet counters: arrivals=",
		"PASS graph_conservation",
	} {
		if !strings.Contains(live, frag) {
			t.Fatalf("graph summary missing %q:\n%s", frag, live)
		}
	}

	replayed, err := Replay(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("graph replay failed: %v\nlog:\n%s", err, log.String())
	}
	if replayed != live {
		t.Fatalf("graph replay diverged from live run:\n--- live ---\n%s--- replay ---\n%s", live, replayed)
	}

	// The actions must have moved the DAG fleet: a zero-action graph run
	// ends elsewhere.
	plain, err := ReplayActions(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain == live {
		t.Fatal("graph action run is identical to the zero-action run: actions were lost")
	}
	if !strings.Contains(plain, "== hhsim serve summary (graph) ==") {
		t.Fatalf("zero-action replay lost graph mode:\n%s", plain)
	}
}

// TestGraphServeStepInvariance: the serve barrier cadence must not leak
// into DAG results any more than it does for a single server.
func TestGraphServeStepInvariance(t *testing.T) {
	a := graphCfg()
	b := graphCfg()
	b.StepMS = 3
	sa, err := ReplayActions(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ReplayActions(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	trim := func(s string) string { return s[strings.Index(s, "\ngraph:"):] }
	if trim(sa) != trim(sb) {
		t.Fatalf("step size changed DAG results:\n--- 10ms ---\n%s--- 3ms ---\n%s", sa, sb)
	}
}

// TestGraphConfigValidation covers the constructor's graph-mode checks and
// the apply-time action rules specific to the DAG fleet.
func TestGraphConfigValidation(t *testing.T) {
	bad := graphCfg()
	bad.Routed = true
	bad.Policy = "round_robin"
	if _, err := NewRunner(bad, nil, 0); err == nil {
		t.Fatal("routed+graph run accepted (the two front doors are exclusive)")
	}
	bad = graphCfg()
	bad.Graph = "hotelres"
	if _, err := NewRunner(bad, nil, 0); err == nil || !strings.Contains(err.Error(), "socialnet") {
		t.Fatalf("unknown graph accepted or error unhelpful: %v", err)
	}
	bad = graphCfg()
	bad.Backends = 0
	if _, err := NewRunner(bad, nil, 0); err == nil {
		t.Fatal("graph run with 0 backends per group accepted")
	}

	r, err := NewRunner(graphCfg(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.applyGraph(Action{Kind: ActDrain, Server: 1, DeadlineMS: 2}, 0); err == nil {
		t.Fatal("graph run accepted a drain (a router concept)")
	}
	if err := r.applyGraph(Action{Kind: ActFaults, Server: 9, Plan: &faults.Plan{}}, 0); err == nil {
		t.Fatal("graph run accepted an out-of-range server target")
	}
}

// TestHTTPGraphSurfaces: graph runs expose the DAG snapshot on /api/state
// and the hhsim_graph_* families on /metrics, and graphless runs keep both
// surfaces free of graph artifacts.
func TestHTTPGraphSurfaces(t *testing.T) {
	r, err := NewRunner(graphCfg(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := r.Subscribe(4096)
	defer cancel()
	r.Pause()
	go r.Loop()
	ts := httptest.NewServer(NewHTTP(r))
	defer ts.Close()

	// Advance past warmup so the dispatcher has admitted real requests.
	for i := 0; i < 3; i++ {
		if code, body := post(t, ts.URL+"/api/step", ""); code != http.StatusOK {
			t.Fatalf("step POST: %d: %s", code, body)
		}
		<-ch
	}

	var st struct {
		Graph *GraphPoint `json:"graph"`
	}
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/api/state")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Graph == nil {
		t.Fatal("graph /api/state has no graph block")
	}
	if st.Graph.Graph != "socialnet" || st.Graph.Root != "frontend" || len(st.Graph.Tiers) != 4 {
		t.Fatalf("graph block mismatch: %+v", st.Graph)
	}
	if st.Graph.Generated == 0 || st.Graph.Dispatches == 0 {
		t.Fatalf("dispatcher idle after 30ms: %+v", st.Graph)
	}
	// Ledger sanity straight off the wire: answered RPCs never exceed
	// dispatched, completions never exceed admissions.
	if st.Graph.DoneRecv+st.Graph.ShedRecv > st.Graph.Dispatches {
		t.Fatalf("more RPC answers than dispatches: %+v", st.Graph)
	}
	if st.Graph.Completed+st.Graph.Failed > st.Graph.Generated {
		t.Fatalf("more settled requests than generated: %+v", st.Graph)
	}

	fams := parseExposition(t, getBody(t, ts.URL+"/metrics"))
	gen := sampleValue(t, fams, "hhsim_graph_requests_total", map[string]string{"kind": "generated"})
	if uint64(gen) != st.Graph.Generated {
		t.Fatalf("hhsim_graph_requests_total{kind=generated} = %g, state says %d", gen, st.Graph.Generated)
	}
	disp := sampleValue(t, fams, "hhsim_graph_rpcs_total", map[string]string{"kind": "dispatched"})
	var tierDisp float64
	for _, tier := range []string{"frontend", "logic", "cache", "db"} {
		tierDisp += sampleValue(t, fams, "hhsim_graph_tier_rpcs_total",
			map[string]string{"tier": tier, "kind": "dispatched"})
	}
	if disp != tierDisp {
		t.Fatalf("tier dispatch ledger (%g) does not sum to the fleet ledger (%g)", tierDisp, disp)
	}
	if v := sampleValue(t, fams, "hhsim_graph_e2e_latency_ms", map[string]string{"quantile": "0.99"}); v < 0 {
		t.Fatalf("negative e2e p99: %g", v)
	}
	for _, name := range []string{"hhsim_graph_inflight", "hhsim_graph_outstanding",
		"hhsim_graph_tier_hop_ms"} {
		if familyOf(fams, name) == nil {
			t.Fatalf("metric %s not exposed", name)
		}
	}
	r.Shutdown()

	// Graphless surfaces stay clean: no graph JSON key, no graph families.
	plain, err := NewRunner(quickCfg(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain.Pause()
	go plain.Loop()
	ts2 := httptest.NewServer(NewHTTP(plain))
	defer ts2.Close()
	if body := getBody(t, ts2.URL+"/api/state"); strings.Contains(body, `"graph"`) {
		t.Fatalf("graphless state leaked a graph block:\n%s", body)
	}
	if body := getBody(t, ts2.URL+"/metrics"); strings.Contains(body, "hhsim_graph_") {
		t.Fatalf("graphless scrape leaked graph families:\n%s", body)
	}
	plain.Shutdown()
}
