package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"hardharvest/internal/faults"
	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
)

// NewHTTP wires the runner's control surface onto a fresh mux:
//
//	GET  /metrics         Prometheus text exposition
//	GET  /api/state       current barrier snapshot (JSON)
//	GET  /api/timeseries  streaming snapshots (SSE or NDJSON)
//	POST /api/config      enqueue barrier-applied mutations
//	POST /api/pause|resume|step
//	POST /api/shutdown
func NewHTTP(r *Runner) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if !methodIs(w, req, http.MethodGet) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, r.State())
	})
	mux.HandleFunc("/api/state", func(w http.ResponseWriter, req *http.Request) {
		if !methodIs(w, req, http.MethodGet) {
			return
		}
		writeJSON(w, http.StatusOK, stateJSON(r.State()))
	})
	mux.HandleFunc("/api/config", func(w http.ResponseWriter, req *http.Request) {
		if !methodIs(w, req, http.MethodPost) {
			return
		}
		var body configRequest
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("bad config body: %w", err))
			return
		}
		queued, err := enqueueConfig(r, body)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"queued": queued,
			"note":   "applied at the next simulated-time barrier",
		})
	})
	mux.HandleFunc("/api/pause", control(r, func(r *Runner) error { r.Pause(); return nil }))
	mux.HandleFunc("/api/resume", control(r, func(r *Runner) error { r.Resume(); return nil }))
	mux.HandleFunc("/api/step", control(r, (*Runner).StepBarrier))
	mux.HandleFunc("/api/shutdown", control(r, func(r *Runner) error { r.Shutdown(); return nil }))
	mux.HandleFunc("/api/timeseries", func(w http.ResponseWriter, req *http.Request) {
		if !methodIs(w, req, http.MethodGet) {
			return
		}
		streamTimeseries(r, w, req)
	})
	return mux
}

func methodIs(w http.ResponseWriter, req *http.Request, m string) bool {
	if req.Method != m {
		httpErr(w, http.StatusMethodNotAllowed, fmt.Errorf("%s requires %s", req.URL.Path, m))
		return false
	}
	return true
}

func httpErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// control adapts a pacing mutation into a POST handler.
func control(r *Runner, f func(*Runner) error) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if !methodIs(w, req, http.MethodPost) {
			return
		}
		if err := f(r); err != nil {
			httpErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"ok": "true"})
	}
}

// configRequest is the POST /api/config body: each present field becomes
// one barrier-applied action. Server targets one fleet backend in routed
// mode (fault_plan, drain_deadline_ms); it is rejected at apply time on a
// routerless run.
type configRequest struct {
	Intensity       *float64     `json:"intensity,omitempty"`
	HarvestOnBlock  *bool        `json:"harvest_on_block,omitempty"`
	Resilience      *bool        `json:"resilience,omitempty"`
	FaultPlan       *faults.Plan `json:"fault_plan,omitempty"`
	Server          int          `json:"server,omitempty"`
	DrainDeadlineMS *float64     `json:"drain_deadline_ms,omitempty"`
}

func enqueueConfig(r *Runner, body configRequest) (int, error) {
	var acts []Action
	if body.Intensity != nil {
		acts = append(acts, Action{Kind: ActIntensity, Intensity: *body.Intensity})
	}
	if body.HarvestOnBlock != nil {
		acts = append(acts, Action{Kind: ActHarvestOnBlock, On: *body.HarvestOnBlock})
	}
	if body.Resilience != nil {
		acts = append(acts, Action{Kind: ActResilience, On: *body.Resilience})
	}
	if body.FaultPlan != nil {
		acts = append(acts, Action{Kind: ActFaults, Plan: body.FaultPlan, Server: body.Server})
	}
	if body.DrainDeadlineMS != nil {
		acts = append(acts, Action{Kind: ActDrain, Server: body.Server, DeadlineMS: *body.DrainDeadlineMS})
	}
	if len(acts) == 0 {
		return 0, fmt.Errorf("config body names no settings (intensity, harvest_on_block, resilience, fault_plan, drain_deadline_ms)")
	}
	// Validate everything before enqueueing anything: a config POST is
	// applied all-or-nothing so a typo cannot half-apply.
	for _, a := range acts {
		if err := a.validate(); err != nil {
			return 0, err
		}
	}
	for _, a := range acts {
		if err := r.Enqueue(a); err != nil {
			return 0, err
		}
	}
	return len(acts), nil
}

// stateJSON shapes a State for the /api/state response.
func stateJSON(st State) map[string]any {
	qs := st.Hist.Quantiles(0.50, 0.99)
	vms := make([]VMPoint, 0, len(st.Occupancy.VMs))
	names := map[int]string{}
	for _, vm := range st.Topology.VMs {
		names[vm.Idx] = vm.Name
	}
	for _, v := range st.Occupancy.VMs {
		vms = append(vms, VMPoint{
			VM: v.VM, Name: names[v.VM], Running: v.Running, Blocked: v.Blocked,
			Queued: v.Queued, LentOut: v.LentOut, Pinned: v.Pinned, BusyCores: v.BusyCores,
		})
	}
	out := map[string]any{
		"config":       st.Config,
		"sim_ms":       sim.Duration(st.SimTime).Milliseconds(),
		"horizon_ms":   sim.Duration(st.Horizon).Milliseconds(),
		"done":         st.Done,
		"paused":       st.Paused,
		"pace":         st.Pace,
		"intensity":    st.Intensity,
		"events_fired": st.EventsFired,
		"actions":      st.Actions,
		"counters":     st.Counters,
		"latency_ms": map[string]float64{
			"p50":  qs[0].Milliseconds(),
			"p99":  qs[1].Milliseconds(),
			"mean": st.Hist.Mean().Milliseconds(),
			"max":  st.Hist.Max().Milliseconds(),
		},
		"vms": vms,
	}
	if st.Router != nil {
		out["router"] = st.Router
	}
	if st.Graph != nil {
		out["graph"] = st.Graph
	}
	return out
}

// writeMetrics renders the Prometheus exposition for one published state.
// Metric families and label values come out in a fixed order (the counter
// def table, then topology order), so two scrapes of identical simulator
// state are byte-identical — the serve-smoke CI job depends on that.
func writeMetrics(w http.ResponseWriter, st State) {
	p := obs.NewPromWriter(w)
	runLabels := []obs.PromLabel{
		{Key: "system", Value: st.Config.System},
		{Key: "workload", Value: st.Config.Workload},
	}
	p.Head("hhsim_info", "run identity (value is always 1)", "gauge")
	p.Uint("hhsim_info", 1, append(runLabels,
		obs.PromLabel{Key: "seed", Value: strconv.FormatUint(st.Config.Seed, 10)})...)
	p.Head("hhsim_sim_time_seconds", "current simulated time", "gauge")
	p.Float("hhsim_sim_time_seconds", sim.Duration(st.SimTime).Seconds())
	p.Head("hhsim_sim_horizon_seconds", "simulated end-of-run time", "gauge")
	p.Float("hhsim_sim_horizon_seconds", sim.Duration(st.Horizon).Seconds())
	p.Head("hhsim_run_done", "1 once the horizon is reached", "gauge")
	p.Uint("hhsim_run_done", boolToUint(st.Done))
	p.Head("hhsim_paused", "1 while the pacing loop is paused", "gauge")
	p.Uint("hhsim_paused", boolToUint(st.Paused))
	p.Head("hhsim_intensity", "offered-load multiplier (1 = configured load)", "gauge")
	p.Float("hhsim_intensity", st.Intensity)
	p.Head("hhsim_engine_events_total", "simulation events executed", "counter")
	p.Uint("hhsim_engine_events_total", st.EventsFired)
	p.Head("hhsim_actions_applied_total", "control actions applied at barriers", "counter")
	p.Uint("hhsim_actions_applied_total", uint64(st.Actions))

	p.Head("hhsim_events_total", "simulator transitions by kind", "counter")
	for _, d := range obs.CounterDefs() {
		c := st.Counters
		p.Uint("hhsim_events_total", d.Get(&c), obs.PromLabel{Key: "kind", Value: d.Name})
	}

	p.Histogram("hhsim_request_latency_seconds",
		"end-to-end primary request latency (warmup included)",
		st.Hist, obs.DefaultLatencyBuckets)

	names := map[int]string{}
	for _, vm := range st.Topology.VMs {
		names[vm.Idx] = vm.Name
	}
	p.Head("hhsim_vm_occupancy", "per-VM occupancy at the last barrier, by state", "gauge")
	for _, v := range st.Occupancy.VMs {
		vmLabels := func(state string) []obs.PromLabel {
			return []obs.PromLabel{
				{Key: "vm", Value: strconv.Itoa(v.VM)},
				{Key: "name", Value: names[v.VM]},
				{Key: "state", Value: state},
			}
		}
		p.Uint("hhsim_vm_occupancy", uint64(v.Running), vmLabels("running")...)
		p.Uint("hhsim_vm_occupancy", uint64(v.Blocked), vmLabels("blocked")...)
		p.Uint("hhsim_vm_occupancy", uint64(v.Queued), vmLabels("queued")...)
		p.Uint("hhsim_vm_occupancy", uint64(v.LentOut), vmLabels("lent_out")...)
		p.Uint("hhsim_vm_occupancy", uint64(v.Pinned), vmLabels("pinned")...)
		p.Uint("hhsim_vm_occupancy", uint64(v.BusyCores), vmLabels("busy_cores")...)
	}

	// Router families appear only in routed mode, after the single-server
	// families, so routerless scrapes stay byte-identical.
	if rt := st.Router; rt != nil {
		p.Head("hhsim_router_requests_total", "front-door request ledger, by stage", "counter")
		reqKind := func(kind string, v uint64) {
			p.Uint("hhsim_router_requests_total", v, obs.PromLabel{Key: "kind", Value: kind})
		}
		reqKind("generated", rt.Generated)
		reqKind("dispatched", rt.Dispatches)
		reqKind("failovers", rt.Failovers)
		reqKind("completed", rt.Completions)
		reqKind("shed", rt.Sheds)
		reqKind("lost", rt.Lost)
		reqKind("zombie_dones", rt.ZombieDones)
		p.Head("hhsim_router_outstanding", "attempts dispatched and not yet answered", "gauge")
		p.Uint("hhsim_router_outstanding", rt.Outstanding)
		p.Head("hhsim_router_health_total", "health-check and membership transitions, by kind", "counter")
		healthKind := func(kind string, v uint64) {
			p.Uint("hhsim_router_health_total", v, obs.PromLabel{Key: "kind", Value: kind})
		}
		healthKind("probes", rt.Probes)
		healthKind("probe_fails", rt.ProbeFails)
		healthKind("ejections", rt.Ejections)
		healthKind("readmits", rt.Readmits)
		healthKind("drains", rt.Drains)
		p.Head("hhsim_router_fleet_latency_ms", "end-to-end fleet latency quantiles", "gauge")
		p.Float("hhsim_router_fleet_latency_ms", rt.FleetP50MS, obs.PromLabel{Key: "quantile", Value: "0.5"})
		p.Float("hhsim_router_fleet_latency_ms", rt.FleetP99MS, obs.PromLabel{Key: "quantile", Value: "0.99"})
		p.Head("hhsim_router_backend_up", "1 when the backend is routable, by state", "gauge")
		for _, b := range rt.Backends {
			up := uint64(0)
			if b.State == "healthy" {
				up = 1
			}
			p.Uint("hhsim_router_backend_up", up,
				obs.PromLabel{Key: "backend", Value: b.Name},
				obs.PromLabel{Key: "state", Value: b.State})
		}
		p.Head("hhsim_router_backend_attempts_total", "per-backend attempt ledger, by kind", "counter")
		for _, b := range rt.Backends {
			attempt := func(kind string, v uint64) {
				p.Uint("hhsim_router_backend_attempts_total", v,
					obs.PromLabel{Key: "backend", Value: b.Name},
					obs.PromLabel{Key: "kind", Value: kind})
			}
			attempt("dispatched", b.Dispatches)
			attempt("done", b.Dones)
			attempt("shed", b.Sheds)
			attempt("crashes", b.Crashes)
		}
		p.Head("hhsim_router_backend_active", "live attempts routed to the backend", "gauge")
		for _, b := range rt.Backends {
			p.Uint("hhsim_router_backend_active", uint64(b.Active),
				obs.PromLabel{Key: "backend", Value: b.Name})
		}
	}

	// Graph families appear only in DAG mode, after everything else, so
	// graphless scrapes stay byte-identical.
	if gp := st.Graph; gp != nil {
		p.Head("hhsim_graph_requests_total", "end-to-end DAG request ledger, by stage", "counter")
		reqKind := func(kind string, v uint64) {
			p.Uint("hhsim_graph_requests_total", v, obs.PromLabel{Key: "kind", Value: kind})
		}
		reqKind("generated", gp.Generated)
		reqKind("completed", gp.Completed)
		reqKind("failed", gp.Failed)
		p.Head("hhsim_graph_inflight", "root requests admitted and not yet drained", "gauge")
		p.Uint("hhsim_graph_inflight", gp.Inflight)
		p.Head("hhsim_graph_rpcs_total", "inter-tier RPC ledger, by kind", "counter")
		rpcKind := func(kind string, v uint64) {
			p.Uint("hhsim_graph_rpcs_total", v, obs.PromLabel{Key: "kind", Value: kind})
		}
		rpcKind("dispatched", gp.Dispatches)
		rpcKind("done", gp.DoneRecv)
		rpcKind("shed", gp.ShedRecv)
		p.Head("hhsim_graph_outstanding", "RPCs dispatched and not yet answered", "gauge")
		p.Uint("hhsim_graph_outstanding", gp.Outstanding)
		p.Head("hhsim_graph_e2e_latency_ms", "end-to-end critical-path latency quantiles", "gauge")
		p.Float("hhsim_graph_e2e_latency_ms", gp.E2EP50MS, obs.PromLabel{Key: "quantile", Value: "0.5"})
		p.Float("hhsim_graph_e2e_latency_ms", gp.E2EP99MS, obs.PromLabel{Key: "quantile", Value: "0.99"})
		p.Head("hhsim_graph_tier_rpcs_total", "per-tier RPC ledger, by kind", "counter")
		for _, t := range gp.Tiers {
			tierKind := func(kind string, v uint64) {
				p.Uint("hhsim_graph_tier_rpcs_total", v,
					obs.PromLabel{Key: "tier", Value: t.Tier},
					obs.PromLabel{Key: "kind", Value: kind})
			}
			tierKind("dispatched", t.Dispatches)
			tierKind("done", t.Dones)
			tierKind("shed", t.Sheds)
		}
		p.Head("hhsim_graph_tier_hop_ms", "per-tier RPC round-trip quantiles", "gauge")
		for _, t := range gp.Tiers {
			p.Float("hhsim_graph_tier_hop_ms", t.HopP50MS,
				obs.PromLabel{Key: "tier", Value: t.Tier},
				obs.PromLabel{Key: "quantile", Value: "0.5"})
			p.Float("hhsim_graph_tier_hop_ms", t.HopP99MS,
				obs.PromLabel{Key: "tier", Value: t.Tier},
				obs.PromLabel{Key: "quantile", Value: "0.99"})
		}
	}
	p.Flush()
}

func boolToUint(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// streamTimeseries serves GET /api/timeseries: SSE when the client asks
// for text/event-stream (or ?format=sse), chunked NDJSON otherwise. One
// point is emitted per simulated barrier until the run completes or the
// client disconnects.
func streamTimeseries(r *Runner, w http.ResponseWriter, req *http.Request) {
	sse := req.URL.Query().Get("format") == "sse" ||
		strings.Contains(req.Header.Get("Accept"), "text/event-stream")
	fl, canFlush := w.(http.Flusher)
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	// Flush headers now: a paused run publishes no points, and clients
	// (curl, http.Get) block until the response header arrives.
	w.WriteHeader(http.StatusOK)
	if canFlush {
		fl.Flush()
	}
	ch, cancel := r.Subscribe(64)
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-req.Context().Done():
			return
		case <-r.ShutdownRequested():
			return
		case tp, ok := <-ch:
			if !ok {
				return
			}
			if sse {
				fmt.Fprintf(w, "data: ")
			}
			enc.Encode(tp)
			if sse {
				fmt.Fprintf(w, "\n")
			}
			if canFlush {
				fl.Flush()
			}
			if tp.Done {
				return
			}
		}
	}
}
