// Package serve hosts a long-lived simulation behind a live control
// surface: a pacing loop advances the cluster simulation in simulated-time
// slices (barriers), HTTP handlers read published barrier snapshots and
// enqueue control actions, and every applied action is appended to a
// deterministic NDJSON log so a served run can be replayed byte-identically
// as a batch run.
//
// Determinism model (DESIGN.md §8): the engine executes the identical event
// sequence whether the horizon is reached in one Run or many StepTo slices,
// so the only way a served run can diverge from a batch run is through
// control actions — and those are applied exclusively at barriers, logged
// with their barrier time, and implemented as pure functions of (run
// config, action, barrier time). Pause, resume, manual stepping, and the
// pacing rate affect only the wall-clock schedule of the loop, never the
// simulation, and are deliberately absent from the log.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/faults"
	"hardharvest/internal/graph"
	"hardharvest/internal/obs"
	"hardharvest/internal/route"
	"hardharvest/internal/sim"
)

// RunConfig identifies a served run completely: the same config plus the
// same action log reproduces the same simulation. The routed fields select
// fleet mode: a front-door router (internal/route) admits the workload and
// dispatches to Backends identical servers over network edges; all three
// are omitted from JSON when unset so routerless logs and /api/state bytes
// are unchanged.
type RunConfig struct {
	System   string `json:"system"`   // cluster.SystemKind name (e.g. "HardHarvest-Block")
	Workload string `json:"workload"` // batch workload name (e.g. "BFS")
	Seed     uint64 `json:"seed"`
	WarmupMS int    `json:"warmup_ms"`
	SimMS    int    `json:"sim_ms"`  // measurement window
	StepMS   int    `json:"step_ms"` // barrier cadence

	Routed   bool   `json:"routed,omitempty"`   // serve a routed fleet instead of one server
	Backends int    `json:"backends,omitempty"` // fleet size (routed mode) or servers per tier group (graph mode)
	Policy   string `json:"policy,omitempty"`   // routing policy (routed mode)

	// Graph names a built-in request DAG ("socialnet"); when set the run
	// serves a DAG fleet behind a graph dispatcher (internal/graph): each
	// tier group gets Backends identical servers, and the `hhsim_graph_*`
	// Prometheus families report the DAG ledgers. Exclusive with Routed.
	Graph string `json:"graph,omitempty"`
}

// DefaultRunConfig mirrors the quick experiment scale on the paper's full
// system.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		System:   cluster.HardHarvestBlock.String(),
		Workload: "BFS",
		Seed:     1,
		WarmupMS: 100,
		SimMS:    2000,
		StepMS:   10,
	}
}

// build constructs the cluster server plus its meter for this config. It
// is the single construction path for live runs, replays, and the batch
// baseline in tests: the byte-equivalence guarantees hold because every
// mode starts from the identical simulation.
func (rc RunConfig) build() (*cluster.Server, *obs.Meter, error) {
	kind, err := ParseSystem(rc.System)
	if err != nil {
		return nil, nil, err
	}
	work, err := batch.WorkloadByName(rc.Workload)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: %w", err)
	}
	ccfg := cluster.DefaultConfig()
	ccfg.WarmupDuration = sim.Duration(rc.WarmupMS) * sim.Millisecond
	ccfg.MeasureDuration = sim.Duration(rc.SimMS) * sim.Millisecond
	ccfg.Seed = rc.Seed
	opts := cluster.SystemOptions(kind)
	meter := obs.NewMeter()
	opts.Observer = meter
	return cluster.NewServer(ccfg, opts, work), meter, nil
}

// buildRouted constructs the routed fleet: Backends servers in remote-
// admission mode behind a router member of one ShardGroup, wired exactly
// like the scenario runner wires a routed fleet (links both ways at the
// network delay, hooks installed before any server starts). Per-backend
// seeds follow the RunCluster derivation.
func (rc RunConfig) buildRouted() (*sim.ShardGroup, *route.Router, []*cluster.Server, []*obs.Meter, error) {
	kind, err := ParseSystem(rc.System)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	work, err := batch.WorkloadByName(rc.Workload)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("serve: %w", err)
	}
	if rc.Backends <= 0 {
		return nil, nil, nil, nil, fmt.Errorf("serve: routed mode needs backends >= 1, got %d", rc.Backends)
	}
	rcfg := route.DefaultConfig()
	if rc.Policy != "" {
		pol, err := route.ParsePolicy(rc.Policy)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("serve: %w", err)
		}
		rcfg.Policy = pol
	}
	fleet := make([]*cluster.Server, rc.Backends)
	meters := make([]*obs.Meter, rc.Backends)
	backends := make([]route.Backend, rc.Backends)
	for i := range fleet {
		ccfg := cluster.DefaultConfig()
		ccfg.WarmupDuration = sim.Duration(rc.WarmupMS) * sim.Millisecond
		ccfg.MeasureDuration = sim.Duration(rc.SimMS) * sim.Millisecond
		ccfg.Seed = rc.Seed + uint64(i)*7919
		opts := cluster.SystemOptions(kind)
		meters[i] = obs.NewMeter()
		opts.Observer = meters[i]
		opts.RemoteAdmission = true
		fleet[i] = cluster.NewServer(ccfg, opts, work)
		backends[i] = route.Backend{
			Server: fleet[i], Cfg: ccfg,
			Name:   fmt.Sprintf("server%d", i),
			Weight: 1,
		}
	}
	rt := route.New(rcfg, backends)
	group := sim.NewShardGroup(0)
	self := group.AddFunc(rt.Engine(), rt.Advance)
	members := make([]int, len(fleet))
	for i, srv := range fleet {
		srv := srv
		m := group.AddFunc(srv.Engine(), func(to sim.Time) {
			if h := srv.Horizon(); to > h {
				to = h
			}
			srv.StepTo(to)
		})
		group.Link(self, m, rcfg.NetDelay)
		group.Link(m, self, rcfg.NetDelay)
		members[i] = m
	}
	rt.Bind(group, self, members)
	for _, srv := range fleet {
		srv.Start()
	}
	return group, rt, fleet, meters, nil
}

// ParseGraph resolves a built-in DAG name to its spec.
func ParseGraph(name string, netDelay sim.Duration) (*graph.Spec, error) {
	switch name {
	case "socialnet":
		return graph.SocialNet(netDelay), nil
	default:
		return nil, fmt.Errorf("serve: unknown graph %q (want one of [socialnet])", name)
	}
}

// buildGraph constructs the DAG fleet: every tier group in the spec gets
// cfg.Backends identical remote-admission servers, all behind one graph
// dispatcher wired over ShardGroup edges exactly like the scenario runner
// wires graph mode (links both ways at the RPC network delay, hooks bound
// before any server starts).
func (rc RunConfig) buildGraph() (*sim.ShardGroup, *graph.Dispatcher, []*cluster.Server, []*obs.Meter, error) {
	kind, err := ParseSystem(rc.System)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	work, err := batch.WorkloadByName(rc.Workload)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("serve: %w", err)
	}
	if rc.Backends <= 0 {
		return nil, nil, nil, nil, fmt.Errorf("serve: graph mode needs backends >= 1 per tier group, got %d", rc.Backends)
	}
	spec, err := ParseGraph(rc.Graph, 20*sim.Microsecond)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	// Tier groups in first-appearance order; tiers in the same group share
	// the same server set (the scenario runner's binding rule).
	var groups []string
	groupIdx := map[string]int{}
	for i := range spec.Tiers {
		if _, ok := groupIdx[spec.Tiers[i].Group]; !ok {
			groupIdx[spec.Tiers[i].Group] = len(groups)
			groups = append(groups, spec.Tiers[i].Group)
		}
	}
	n := len(groups) * rc.Backends
	fleet := make([]*cluster.Server, n)
	meters := make([]*obs.Meter, n)
	backends := make([]graph.Backend, n)
	byGroup := make([][]int, len(groups))
	for gi, gname := range groups {
		for k := 0; k < rc.Backends; k++ {
			i := gi*rc.Backends + k
			ccfg := cluster.DefaultConfig()
			ccfg.WarmupDuration = sim.Duration(rc.WarmupMS) * sim.Millisecond
			ccfg.MeasureDuration = sim.Duration(rc.SimMS) * sim.Millisecond
			ccfg.Seed = rc.Seed + uint64(i)*7919
			opts := cluster.SystemOptions(kind)
			meters[i] = obs.NewMeter()
			opts.Observer = meters[i]
			opts.RemoteAdmission = true
			fleet[i] = cluster.NewServer(ccfg, opts, work)
			backends[i] = graph.Backend{
				Server: fleet[i], Cfg: ccfg,
				Name: fmt.Sprintf("server%d[%s]", i, gname),
			}
			byGroup[gi] = append(byGroup[gi], i)
		}
	}
	tiers := make([][]int, len(spec.Tiers))
	for ti := range spec.Tiers {
		tiers[ti] = byGroup[groupIdx[spec.Tiers[ti].Group]]
	}
	gd := graph.New(spec, backends, tiers)
	group := sim.NewShardGroup(0)
	self := group.AddFunc(gd.Engine(), gd.Advance)
	members := make([]int, len(fleet))
	for i, srv := range fleet {
		srv := srv
		m := group.AddFunc(srv.Engine(), func(to sim.Time) {
			if h := srv.Horizon(); to > h {
				to = h
			}
			srv.StepTo(to)
		})
		group.Link(self, m, spec.NetDelay)
		group.Link(m, self, spec.NetDelay)
		members[i] = m
	}
	gd.Bind(group, self, members)
	for _, srv := range fleet {
		srv.Start()
	}
	return group, gd, fleet, meters, nil
}

// ParseSystem resolves a system name as printed by cluster.SystemKind.
func ParseSystem(name string) (cluster.SystemKind, error) {
	for _, k := range cluster.Systems() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown system %q (want one of %v)", name, cluster.Systems())
}

// Action kinds. Every kind is applied at a barrier and logged.
const (
	ActIntensity      = "intensity"        // scale offered load (Intensity field)
	ActHarvestOnBlock = "harvest_on_block" // toggle harvest-on-block (On field)
	ActResilience     = "resilience"       // toggle resilience policies (On field)
	ActFaults         = "faults"           // inject a fault plan (Plan field)
	ActDrain          = "drain"            // gracefully drain one backend (routed mode; Server + DeadlineMS)
)

// Action is one logged control mutation. At is the simulated barrier time
// (picoseconds) it was applied at; replay re-applies it at the same barrier.
// Server targets one fleet backend in routed mode (faults, drain); in
// routerless mode it must stay 0.
type Action struct {
	At         int64        `json:"at"`
	Kind       string       `json:"kind"`
	Intensity  float64      `json:"intensity,omitempty"`
	On         bool         `json:"on,omitempty"`
	Plan       *faults.Plan `json:"plan,omitempty"`
	Server     int          `json:"server,omitempty"`
	DeadlineMS float64      `json:"deadline_ms,omitempty"`
}

// validate rejects malformed actions at enqueue time, before they reach the
// log. Config-dependent checks (backend range, routed-only kinds) run at
// apply time, where a failing action is dropped unlogged.
func (a Action) validate() error {
	if a.Server < 0 {
		return fmt.Errorf("serve: server must be >= 0, got %d", a.Server)
	}
	switch a.Kind {
	case ActIntensity:
		if !(a.Intensity > 0) {
			return fmt.Errorf("serve: intensity must be positive, got %v", a.Intensity)
		}
	case ActHarvestOnBlock, ActResilience:
		// any On value is valid
	case ActFaults:
		if a.Plan == nil {
			return fmt.Errorf("serve: faults action without a plan")
		}
		if err := a.Plan.Validate(); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	case ActDrain:
		if !(a.DeadlineMS > 0) {
			return fmt.Errorf("serve: drain needs deadline_ms > 0, got %v", a.DeadlineMS)
		}
	default:
		return fmt.Errorf("serve: unknown action kind %q", a.Kind)
	}
	return nil
}

// logHeader is the first line of an action log.
type logHeader struct {
	Magic  int       `json:"hhsim_serve_log"`
	Config RunConfig `json:"config"`
}

// VMPoint is one VM's occupancy inside a TimePoint.
type VMPoint struct {
	VM        int    `json:"vm"`
	Name      string `json:"name"`
	Running   int    `json:"running"`
	Blocked   int    `json:"blocked"`
	Queued    int    `json:"queued"`
	LentOut   int    `json:"lent_out"`
	Pinned    int    `json:"pinned"`
	BusyCores int    `json:"busy_cores"`
}

// TimePoint is one windowed snapshot streamed on /api/timeseries.
type TimePoint struct {
	SimMS       float64   `json:"sim_ms"`
	Done        bool      `json:"done"`
	Arrivals    uint64    `json:"arrivals"`
	Completions uint64    `json:"completions"`
	JobsDone    uint64    `json:"jobs_done"`
	Loans       uint64    `json:"loans"`
	Reclaims    uint64    `json:"reclaims"`
	P50MS       float64   `json:"p50_ms"`
	P99MS       float64   `json:"p99_ms"`
	VMs         []VMPoint `json:"vms"`
}

// RouterBackendPoint is one backend's routed view inside a RouterPoint.
type RouterBackendPoint struct {
	Name       string  `json:"name"`
	State      string  `json:"state"`
	Dispatches uint64  `json:"dispatches"`
	Dones      uint64  `json:"dones"`
	Sheds      uint64  `json:"sheds"`
	Crashes    uint64  `json:"crashes"`
	Active     int     `json:"active"`
	EdgeP99MS  float64 `json:"edge_p99_ms"`
}

// RouterPoint is the router's barrier snapshot in routed mode: plain data
// extracted while the shard group is quiescent, safe for concurrent HTTP
// readers.
type RouterPoint struct {
	Policy      string               `json:"policy"`
	Generated   uint64               `json:"generated"`
	Dispatches  uint64               `json:"dispatches"`
	Failovers   uint64               `json:"failovers"`
	Completions uint64               `json:"completions"`
	Sheds       uint64               `json:"sheds"`
	Lost        uint64               `json:"lost"`
	Outstanding uint64               `json:"outstanding"`
	ZombieDones uint64               `json:"zombie_dones"`
	Probes      uint64               `json:"probes"`
	ProbeFails  uint64               `json:"probe_fails"`
	Ejections   uint64               `json:"ejections"`
	Readmits    uint64               `json:"readmits"`
	Drains      uint64               `json:"drains"`
	FleetP50MS  float64              `json:"fleet_p50_ms"`
	FleetP99MS  float64              `json:"fleet_p99_ms"`
	Backends    []RouterBackendPoint `json:"backends"`
}

// routerPoint extracts the live router snapshot (caller holds the barrier:
// no advance goroutines are live).
func routerPoint(rt *route.Router) *RouterPoint {
	snap := rt.Snapshot()
	p := &RouterPoint{
		Policy:      snap.Policy.String(),
		Generated:   snap.Generated,
		Dispatches:  snap.Dispatches,
		Failovers:   snap.Failovers,
		Completions: snap.Completions,
		Sheds:       snap.Sheds,
		Lost:        snap.Lost,
		Outstanding: snap.OutstandingEnd,
		ZombieDones: snap.ZombieDones,
		Probes:      snap.Probes,
		ProbeFails:  snap.ProbeFails,
		Ejections:   snap.Ejections,
		Readmits:    snap.Readmits,
		Drains:      snap.Drains,
		FleetP50MS:  snap.FleetLatency.P50(),
		FleetP99MS:  snap.FleetLatency.P99(),
	}
	for _, b := range snap.Backends {
		p.Backends = append(p.Backends, RouterBackendPoint{
			Name: b.Name, State: b.State,
			Dispatches: b.Dispatches, Dones: b.Dones, Sheds: b.Sheds,
			Crashes: b.Crashes, Active: b.ActiveEnd,
			EdgeP99MS: b.EdgeLatency.P99(),
		})
	}
	return p
}

// GraphTierPoint is one tier's view inside a GraphPoint.
type GraphTierPoint struct {
	Tier       string  `json:"tier"`
	Servers    int     `json:"servers"`
	VM         int     `json:"vm"`
	Dispatches uint64  `json:"dispatches"`
	Dones      uint64  `json:"dones"`
	Sheds      uint64  `json:"sheds"`
	HopP50MS   float64 `json:"hop_p50_ms"`
	HopP99MS   float64 `json:"hop_p99_ms"`
}

// GraphPoint is the DAG dispatcher's barrier snapshot in graph mode: plain
// data extracted while the shard group is quiescent, safe for concurrent
// HTTP readers.
type GraphPoint struct {
	Graph       string           `json:"graph"`
	Root        string           `json:"root"`
	Generated   uint64           `json:"generated"`
	Completed   uint64           `json:"completed"`
	Failed      uint64           `json:"failed"`
	Inflight    uint64           `json:"inflight"`
	Dispatches  uint64           `json:"dispatches"`
	DoneRecv    uint64           `json:"done_recv"`
	ShedRecv    uint64           `json:"shed_recv"`
	Outstanding uint64           `json:"outstanding"`
	E2EP50MS    float64          `json:"e2e_p50_ms"`
	E2EP99MS    float64          `json:"e2e_p99_ms"`
	E2ECount    int              `json:"e2e_count"`
	Tiers       []GraphTierPoint `json:"tiers"`
}

// graphPoint extracts the live DAG snapshot (caller holds the barrier: no
// advance goroutines are live, so reading the dispatcher's sketches here is
// race-free; only plain floats escape).
func graphPoint(cfg RunConfig, gd *graph.Dispatcher) *GraphPoint {
	snap := gd.Snapshot()
	spec := gd.Spec()
	p := &GraphPoint{
		Graph:       cfg.Graph,
		Root:        spec.Tiers[spec.Root].Name,
		Generated:   snap.Generated,
		Completed:   snap.Completed,
		Failed:      snap.Failed,
		Inflight:    snap.InflightEnd,
		Dispatches:  snap.Dispatches,
		DoneRecv:    snap.DoneRecv,
		ShedRecv:    snap.ShedRecv,
		Outstanding: snap.OutstandingEnd,
		E2EP50MS:    snap.E2E.P50(),
		E2EP99MS:    snap.E2E.P99(),
		E2ECount:    snap.E2E.Count(),
	}
	for _, t := range snap.Tiers {
		p.Tiers = append(p.Tiers, GraphTierPoint{
			Tier: t.Name, Servers: t.Servers, VM: t.VM,
			Dispatches: t.Dispatches, Dones: t.Dones, Sheds: t.Sheds,
			HopP50MS: t.Hop.P50(), HopP99MS: t.Hop.P99(),
		})
	}
	return p
}

// State is the published barrier snapshot HTTP readers see. Everything in
// it is an independent copy: the engine goroutine keeps mutating its own
// structures while readers render this. In routed mode Counters and Hist
// aggregate the whole fleet, Occupancy/Topology show backend 0 (the live
// per-VM view stays single-server), and Router carries the front door's
// snapshot.
type State struct {
	Config      RunConfig
	SimTime     sim.Time
	Horizon     sim.Time
	Done        bool
	Paused      bool
	Pace        float64
	Intensity   float64
	EventsFired uint64
	Actions     int
	Counters    obs.Counters
	Hist        *obs.LatencyHist
	Occupancy   obs.Snapshot
	Topology    obs.Topology
	Router      *RouterPoint // nil in routerless mode
	Graph       *GraphPoint  // nil outside graph mode
}

// Runner drives one served simulation. The loop goroutine owns the cluster
// server (routed mode: the shard group), everything else reads published
// snapshots or enqueues actions under the runner's lock. In routed mode srv
// and meter alias backend 0 so the single-server surfaces keep working.
type Runner struct {
	cfg   RunConfig
	srv   *cluster.Server
	meter *obs.Meter
	step  sim.Duration
	logW  io.Writer

	// Fleet-mode members (nil/empty in single-server mode). Exactly one of
	// rt (routed) and gd (graph) is set when group is.
	group  *sim.ShardGroup
	rt     *route.Router
	gd     *graph.Dispatcher
	fleet  []*cluster.Server
	meters []*obs.Meter

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []Action
	applied  int
	paused   bool
	stepsOK  int // manual barriers granted while paused
	pace     float64
	closing  bool
	intensty float64
	pub      State
	subs     map[chan TimePoint]struct{}

	shutdownCh chan struct{}
	shutdownMu sync.Once

	done    bool
	result  *cluster.ServerResult
	summary string
}

// NewRunner builds the simulation for cfg, schedules its initial events,
// and (when logW is non-nil) writes the action-log header. pace is the
// initial simulated-seconds-per-wall-second rate; 0 runs unpaced.
func NewRunner(cfg RunConfig, logW io.Writer, pace float64) (*Runner, error) {
	if cfg.StepMS <= 0 {
		return nil, fmt.Errorf("serve: step must be positive, got %dms", cfg.StepMS)
	}
	if cfg.SimMS <= 0 || cfg.WarmupMS < 0 {
		return nil, fmt.Errorf("serve: bad window: warmup=%dms sim=%dms", cfg.WarmupMS, cfg.SimMS)
	}
	r := &Runner{
		cfg:        cfg,
		step:       sim.Duration(cfg.StepMS) * sim.Millisecond,
		logW:       logW,
		pace:       pace,
		intensty:   1.0,
		subs:       map[chan TimePoint]struct{}{},
		shutdownCh: make(chan struct{}),
	}
	if cfg.Routed && cfg.Graph != "" {
		return nil, fmt.Errorf("serve: routed and graph modes are exclusive")
	}
	if cfg.Routed {
		group, rt, fleet, meters, err := cfg.buildRouted()
		if err != nil {
			return nil, err
		}
		r.group, r.rt, r.fleet, r.meters = group, rt, fleet, meters
		r.srv, r.meter = fleet[0], meters[0]
	} else if cfg.Graph != "" {
		group, gd, fleet, meters, err := cfg.buildGraph()
		if err != nil {
			return nil, err
		}
		r.group, r.gd, r.fleet, r.meters = group, gd, fleet, meters
		r.srv, r.meter = fleet[0], meters[0]
	} else {
		srv, meter, err := cfg.build()
		if err != nil {
			return nil, err
		}
		r.srv, r.meter = srv, meter
		r.srv.Start()
	}
	r.cond = sync.NewCond(&r.mu)
	r.publishLocked(false) // pre-loop state for early scrapes
	if logW != nil {
		if err := json.NewEncoder(logW).Encode(logHeader{Magic: 1, Config: cfg}); err != nil {
			return nil, fmt.Errorf("serve: action log: %w", err)
		}
	}
	return r, nil
}

// Config reports the run configuration.
func (r *Runner) Config() RunConfig { return r.cfg }

// Loop drives barriers until the horizon is reached or Shutdown is called.
// It must be called exactly once, on its own goroutine for a live server
// (tests drive it synchronously).
func (r *Runner) Loop() {
	barrier := sim.Time(0)
	for {
		r.mu.Lock()
		for r.paused && r.stepsOK == 0 && !r.closing {
			r.cond.Wait()
		}
		if r.closing {
			r.mu.Unlock()
			return
		}
		if r.stepsOK > 0 {
			r.stepsOK--
		}
		todo := r.pending
		r.pending = nil
		pace := r.pace
		r.mu.Unlock()

		// Apply queued actions at this barrier, then log them. Application
		// errors (e.g. a fault plan past the horizon) drop the action —
		// an action that did not change the simulation must not be logged,
		// or replay would diverge.
		for _, a := range todo {
			a.At = int64(barrier)
			if err := r.applyAction(a, barrier); err != nil {
				continue
			}
			r.mu.Lock()
			r.applied++
			if a.Kind == ActIntensity {
				r.intensty = a.Intensity
			}
			r.mu.Unlock()
			if r.logW != nil {
				json.NewEncoder(r.logW).Encode(a)
			}
		}

		next := barrier.Add(r.step)
		if h := r.srv.Horizon(); next > h {
			next = h
		}
		done := r.stepTo(next)
		barrier = next

		r.mu.Lock()
		r.publishLocked(done)
		if done {
			r.done = true
			r.summary = r.renderFinish()
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()

		if pace > 0 {
			time.Sleep(time.Duration(float64(r.step.Std()) / pace))
		}
	}
}

// stepTo advances the simulation one barrier: StepTo on the single server,
// or one bounded sweep of the shard group's conservative windows in routed
// mode. Routed barrier application is safe without engine-event actions
// (unlike the scenario runner's): between group.Run calls every member's
// window grant sits exactly at the barrier, so a mutation applied here can
// only create events at or after everyone's doneTo.
func (r *Runner) stepTo(next sim.Time) bool {
	if r.group != nil {
		r.group.Run(next)
		return next >= r.srv.Horizon()
	}
	return r.srv.StepTo(next)
}

// renderFinish finalizes every simulation member and renders the
// deterministic end-of-run summary. Caller holds r.mu (live loop) or is
// single-threaded (replay).
func (r *Runner) renderFinish() string {
	if r.rt == nil && r.gd == nil {
		r.result = r.srv.Finish()
		return renderSummary(r.cfg, r.result, r.meter.Counters(), r.meter.Hist(), r.applied)
	}
	results := make([]*cluster.ServerResult, len(r.fleet))
	for i, srv := range r.fleet {
		results[i] = srv.Finish()
	}
	r.result = results[0]
	if r.gd != nil {
		return renderGraphSummary(r.cfg, results, r.meters, r.gd.Finish(), r.applied)
	}
	return renderRoutedSummary(r.cfg, results, r.meters, r.rt.Finish(), r.applied)
}

// applyAction mutates the simulation at a barrier. Routed mode redirects
// the intensity knob to the front door's generators (applied to every
// source), fleet-wide toggles to every backend, and targeted kinds (faults,
// drain) to a.Server.
func (r *Runner) applyAction(a Action, at sim.Time) error {
	if r.rt != nil {
		return r.applyRouted(a, at)
	}
	if r.gd != nil {
		return r.applyGraph(a, at)
	}
	if a.Server != 0 {
		return fmt.Errorf("serve: action targets server %d but the run is routerless", a.Server)
	}
	switch a.Kind {
	case ActIntensity:
		return r.srv.SetIntensity(a.Intensity)
	case ActHarvestOnBlock:
		r.srv.SetHarvestOnBlock(a.On)
		return nil
	case ActResilience:
		r.srv.SetResilienceEnabled(a.On)
		return nil
	case ActFaults:
		return r.srv.InjectFaultPlan(a.Plan, at)
	case ActDrain:
		return fmt.Errorf("serve: drain needs a routed run")
	default:
		return fmt.Errorf("serve: unknown action kind %q", a.Kind)
	}
}

func (r *Runner) applyRouted(a Action, at sim.Time) error {
	if a.Server >= len(r.fleet) {
		return fmt.Errorf("serve: server %d out of range (fleet has %d)", a.Server, len(r.fleet))
	}
	switch a.Kind {
	case ActIntensity:
		for src := range r.fleet {
			r.rt.SetIntensity(src, a.Intensity)
		}
		return nil
	case ActHarvestOnBlock:
		for _, srv := range r.fleet {
			srv.SetHarvestOnBlock(a.On)
		}
		return nil
	case ActResilience:
		for _, srv := range r.fleet {
			srv.SetResilienceEnabled(a.On)
		}
		return nil
	case ActFaults:
		return r.fleet[a.Server].InjectFaultPlan(a.Plan, at)
	case ActDrain:
		r.rt.StartDrain(a.Server, sim.Duration(a.DeadlineMS*float64(sim.Millisecond)))
		return nil
	default:
		return fmt.Errorf("serve: unknown action kind %q", a.Kind)
	}
}

// applyGraph mutates the DAG fleet at a barrier: the intensity knob scales
// every root generator, fleet-wide toggles hit every server, faults target
// a.Server, and drain (a router concept) is rejected.
func (r *Runner) applyGraph(a Action, at sim.Time) error {
	if a.Server >= len(r.fleet) {
		return fmt.Errorf("serve: server %d out of range (fleet has %d)", a.Server, len(r.fleet))
	}
	switch a.Kind {
	case ActIntensity:
		r.gd.SetIntensityAll(a.Intensity)
		return nil
	case ActHarvestOnBlock:
		for _, srv := range r.fleet {
			srv.SetHarvestOnBlock(a.On)
		}
		return nil
	case ActResilience:
		for _, srv := range r.fleet {
			srv.SetResilienceEnabled(a.On)
		}
		return nil
	case ActFaults:
		return r.fleet[a.Server].InjectFaultPlan(a.Plan, at)
	case ActDrain:
		return fmt.Errorf("serve: drain needs a routed run")
	default:
		return fmt.Errorf("serve: unknown action kind %q", a.Kind)
	}
}

// publishLocked refreshes the published snapshot and fans a TimePoint out
// to subscribers. Caller holds r.mu; the cluster server is quiescent (the
// loop goroutine is between StepTo calls).
func (r *Runner) publishLocked(done bool) {
	occ := r.srv.OccupancySnapshot()
	topo := r.srv.LiveTopology()
	hist := r.meter.Hist().Clone()
	c := r.meter.Counters()
	events := r.srv.EventsFired()
	var router *RouterPoint
	var gp *GraphPoint
	if r.rt != nil || r.gd != nil {
		c = obs.Counters{}
		hist = obs.NewLatencyHist()
		if r.rt != nil {
			events = r.rt.Engine().Fired()
			router = routerPoint(r.rt)
		} else {
			events = r.gd.Engine().Fired()
			gp = graphPoint(r.cfg, r.gd)
		}
		for i, m := range r.meters {
			mc := m.Counters()
			c.Add(&mc)
			hist.Merge(m.Hist())
			events += r.fleet[i].EventsFired()
		}
	}
	r.pub = State{
		Config:      r.cfg,
		SimTime:     r.srv.Now(),
		Horizon:     r.srv.Horizon(),
		Done:        done,
		Paused:      r.paused,
		Pace:        r.pace,
		Intensity:   r.intensty,
		EventsFired: events,
		Actions:     r.applied,
		Counters:    c,
		Hist:        hist,
		Occupancy:   occ,
		Topology:    topo,
		Router:      router,
		Graph:       gp,
	}
	tp := TimePoint{
		SimMS:       sim.Duration(r.pub.SimTime).Milliseconds(),
		Done:        done,
		Arrivals:    c.Arrivals,
		Completions: c.Completions,
		JobsDone:    c.JobsDone,
		Loans:       c.Loans,
		Reclaims:    c.Reclaims,
		P50MS:       hist.Quantile(0.50).Milliseconds(),
		P99MS:       hist.Quantile(0.99).Milliseconds(),
	}
	names := map[int]string{}
	for _, vm := range topo.VMs {
		names[vm.Idx] = vm.Name
	}
	for _, v := range occ.VMs {
		tp.VMs = append(tp.VMs, VMPoint{
			VM: v.VM, Name: names[v.VM], Running: v.Running, Blocked: v.Blocked,
			Queued: v.Queued, LentOut: v.LentOut, Pinned: v.Pinned, BusyCores: v.BusyCores,
		})
	}
	for ch := range r.subs {
		select {
		case ch <- tp:
		default: // slow subscriber: drop the point, never stall the loop
		}
	}
}

// State returns the latest published barrier snapshot.
func (r *Runner) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pub
}

// Enqueue validates a and queues it for the next barrier.
func (r *Runner) Enqueue(a Action) error {
	if err := a.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done || r.closing {
		return fmt.Errorf("serve: run is over, action not applicable")
	}
	r.pending = append(r.pending, a)
	return nil
}

// Pause stops the loop at the next barrier (wall-clock only; not logged).
func (r *Runner) Pause() {
	r.mu.Lock()
	r.paused = true
	r.publishPausedLocked()
	r.mu.Unlock()
}

// Resume restarts a paused loop.
func (r *Runner) Resume() {
	r.mu.Lock()
	r.paused = false
	r.publishPausedLocked()
	r.mu.Unlock()
	r.cond.Broadcast()
}

// StepBarrier advances one barrier while paused.
func (r *Runner) StepBarrier() error {
	r.mu.Lock()
	defer func() { r.mu.Unlock(); r.cond.Broadcast() }()
	if !r.paused {
		return fmt.Errorf("serve: step requires a paused run")
	}
	r.stepsOK++
	return nil
}

// publishPausedLocked keeps the published pause flag current without
// waiting for the next barrier.
func (r *Runner) publishPausedLocked() {
	r.pub.Paused = r.paused
	r.pub.Pace = r.pace
}

// SetPace changes the simulated-seconds-per-wall-second rate (0 = unpaced).
func (r *Runner) SetPace(p float64) {
	r.mu.Lock()
	r.pace = p
	r.publishPausedLocked()
	r.mu.Unlock()
}

// Shutdown asks the loop to exit at the next barrier and signals the
// process-level waiters. Idempotent.
func (r *Runner) Shutdown() {
	r.shutdownMu.Do(func() {
		r.mu.Lock()
		r.closing = true
		r.mu.Unlock()
		r.cond.Broadcast()
		close(r.shutdownCh)
	})
}

// ShutdownRequested is closed once Shutdown has been called.
func (r *Runner) ShutdownRequested() <-chan struct{} { return r.shutdownCh }

// Done reports whether the run reached its horizon.
func (r *Runner) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Summary returns the deterministic end-of-run summary once Done.
func (r *Runner) Summary() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.summary, r.done
}

// Subscribe registers a timeseries listener; cancel unregisters it and
// closes the channel. Points published while the channel is full are
// dropped.
func (r *Runner) Subscribe(buf int) (<-chan TimePoint, func()) {
	ch := make(chan TimePoint, buf)
	r.mu.Lock()
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		if _, ok := r.subs[ch]; ok {
			delete(r.subs, ch)
			close(ch)
		}
		r.mu.Unlock()
	}
	return ch, cancel
}
