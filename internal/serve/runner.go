// Package serve hosts a long-lived simulation behind a live control
// surface: a pacing loop advances the cluster simulation in simulated-time
// slices (barriers), HTTP handlers read published barrier snapshots and
// enqueue control actions, and every applied action is appended to a
// deterministic NDJSON log so a served run can be replayed byte-identically
// as a batch run.
//
// Determinism model (DESIGN.md §8): the engine executes the identical event
// sequence whether the horizon is reached in one Run or many StepTo slices,
// so the only way a served run can diverge from a batch run is through
// control actions — and those are applied exclusively at barriers, logged
// with their barrier time, and implemented as pure functions of (run
// config, action, barrier time). Pause, resume, manual stepping, and the
// pacing rate affect only the wall-clock schedule of the loop, never the
// simulation, and are deliberately absent from the log.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/faults"
	"hardharvest/internal/obs"
	"hardharvest/internal/sim"
)

// RunConfig identifies a served run completely: the same config plus the
// same action log reproduces the same simulation.
type RunConfig struct {
	System   string `json:"system"`   // cluster.SystemKind name (e.g. "HardHarvest-Block")
	Workload string `json:"workload"` // batch workload name (e.g. "BFS")
	Seed     uint64 `json:"seed"`
	WarmupMS int    `json:"warmup_ms"`
	SimMS    int    `json:"sim_ms"`  // measurement window
	StepMS   int    `json:"step_ms"` // barrier cadence
}

// DefaultRunConfig mirrors the quick experiment scale on the paper's full
// system.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		System:   cluster.HardHarvestBlock.String(),
		Workload: "BFS",
		Seed:     1,
		WarmupMS: 100,
		SimMS:    2000,
		StepMS:   10,
	}
}

// build constructs the cluster server plus its meter for this config. It
// is the single construction path for live runs, replays, and the batch
// baseline in tests: the byte-equivalence guarantees hold because every
// mode starts from the identical simulation.
func (rc RunConfig) build() (*cluster.Server, *obs.Meter, error) {
	kind, err := ParseSystem(rc.System)
	if err != nil {
		return nil, nil, err
	}
	work, err := batch.WorkloadByName(rc.Workload)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: %w", err)
	}
	ccfg := cluster.DefaultConfig()
	ccfg.WarmupDuration = sim.Duration(rc.WarmupMS) * sim.Millisecond
	ccfg.MeasureDuration = sim.Duration(rc.SimMS) * sim.Millisecond
	ccfg.Seed = rc.Seed
	opts := cluster.SystemOptions(kind)
	meter := obs.NewMeter()
	opts.Observer = meter
	return cluster.NewServer(ccfg, opts, work), meter, nil
}

// ParseSystem resolves a system name as printed by cluster.SystemKind.
func ParseSystem(name string) (cluster.SystemKind, error) {
	for _, k := range cluster.Systems() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown system %q (want one of %v)", name, cluster.Systems())
}

// Action kinds. Every kind is applied at a barrier and logged.
const (
	ActIntensity      = "intensity"        // scale offered load (Intensity field)
	ActHarvestOnBlock = "harvest_on_block" // toggle harvest-on-block (On field)
	ActResilience     = "resilience"       // toggle resilience policies (On field)
	ActFaults         = "faults"           // inject a fault plan (Plan field)
)

// Action is one logged control mutation. At is the simulated barrier time
// (picoseconds) it was applied at; replay re-applies it at the same barrier.
type Action struct {
	At        int64        `json:"at"`
	Kind      string       `json:"kind"`
	Intensity float64      `json:"intensity,omitempty"`
	On        bool         `json:"on,omitempty"`
	Plan      *faults.Plan `json:"plan,omitempty"`
}

// validate rejects malformed actions at enqueue time, before they reach the
// log.
func (a Action) validate() error {
	switch a.Kind {
	case ActIntensity:
		if !(a.Intensity > 0) {
			return fmt.Errorf("serve: intensity must be positive, got %v", a.Intensity)
		}
	case ActHarvestOnBlock, ActResilience:
		// any On value is valid
	case ActFaults:
		if a.Plan == nil {
			return fmt.Errorf("serve: faults action without a plan")
		}
		if err := a.Plan.Validate(); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	default:
		return fmt.Errorf("serve: unknown action kind %q", a.Kind)
	}
	return nil
}

// logHeader is the first line of an action log.
type logHeader struct {
	Magic  int       `json:"hhsim_serve_log"`
	Config RunConfig `json:"config"`
}

// VMPoint is one VM's occupancy inside a TimePoint.
type VMPoint struct {
	VM        int    `json:"vm"`
	Name      string `json:"name"`
	Running   int    `json:"running"`
	Blocked   int    `json:"blocked"`
	Queued    int    `json:"queued"`
	LentOut   int    `json:"lent_out"`
	Pinned    int    `json:"pinned"`
	BusyCores int    `json:"busy_cores"`
}

// TimePoint is one windowed snapshot streamed on /api/timeseries.
type TimePoint struct {
	SimMS       float64   `json:"sim_ms"`
	Done        bool      `json:"done"`
	Arrivals    uint64    `json:"arrivals"`
	Completions uint64    `json:"completions"`
	JobsDone    uint64    `json:"jobs_done"`
	Loans       uint64    `json:"loans"`
	Reclaims    uint64    `json:"reclaims"`
	P50MS       float64   `json:"p50_ms"`
	P99MS       float64   `json:"p99_ms"`
	VMs         []VMPoint `json:"vms"`
}

// State is the published barrier snapshot HTTP readers see. Everything in
// it is an independent copy: the engine goroutine keeps mutating its own
// structures while readers render this.
type State struct {
	Config      RunConfig
	SimTime     sim.Time
	Horizon     sim.Time
	Done        bool
	Paused      bool
	Pace        float64
	Intensity   float64
	EventsFired uint64
	Actions     int
	Counters    obs.Counters
	Hist        *obs.LatencyHist
	Occupancy   obs.Snapshot
	Topology    obs.Topology
}

// Runner drives one served simulation. The loop goroutine owns the cluster
// server; everything else reads published snapshots or enqueues actions
// under the runner's lock.
type Runner struct {
	cfg   RunConfig
	srv   *cluster.Server
	meter *obs.Meter
	step  sim.Duration
	logW  io.Writer

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []Action
	applied  int
	paused   bool
	stepsOK  int // manual barriers granted while paused
	pace     float64
	closing  bool
	intensty float64
	pub      State
	subs     map[chan TimePoint]struct{}

	shutdownCh chan struct{}
	shutdownMu sync.Once

	done    bool
	result  *cluster.ServerResult
	summary string
}

// NewRunner builds the simulation for cfg, schedules its initial events,
// and (when logW is non-nil) writes the action-log header. pace is the
// initial simulated-seconds-per-wall-second rate; 0 runs unpaced.
func NewRunner(cfg RunConfig, logW io.Writer, pace float64) (*Runner, error) {
	if cfg.StepMS <= 0 {
		return nil, fmt.Errorf("serve: step must be positive, got %dms", cfg.StepMS)
	}
	if cfg.SimMS <= 0 || cfg.WarmupMS < 0 {
		return nil, fmt.Errorf("serve: bad window: warmup=%dms sim=%dms", cfg.WarmupMS, cfg.SimMS)
	}
	srv, meter, err := cfg.build()
	if err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:        cfg,
		srv:        srv,
		meter:      meter,
		step:       sim.Duration(cfg.StepMS) * sim.Millisecond,
		logW:       logW,
		pace:       pace,
		intensty:   1.0,
		subs:       map[chan TimePoint]struct{}{},
		shutdownCh: make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	r.srv.Start()
	r.publishLocked(false) // pre-loop state for early scrapes
	if logW != nil {
		if err := json.NewEncoder(logW).Encode(logHeader{Magic: 1, Config: cfg}); err != nil {
			return nil, fmt.Errorf("serve: action log: %w", err)
		}
	}
	return r, nil
}

// Config reports the run configuration.
func (r *Runner) Config() RunConfig { return r.cfg }

// Loop drives barriers until the horizon is reached or Shutdown is called.
// It must be called exactly once, on its own goroutine for a live server
// (tests drive it synchronously).
func (r *Runner) Loop() {
	barrier := sim.Time(0)
	for {
		r.mu.Lock()
		for r.paused && r.stepsOK == 0 && !r.closing {
			r.cond.Wait()
		}
		if r.closing {
			r.mu.Unlock()
			return
		}
		if r.stepsOK > 0 {
			r.stepsOK--
		}
		todo := r.pending
		r.pending = nil
		pace := r.pace
		r.mu.Unlock()

		// Apply queued actions at this barrier, then log them. Application
		// errors (e.g. a fault plan past the horizon) drop the action —
		// an action that did not change the simulation must not be logged,
		// or replay would diverge.
		for _, a := range todo {
			a.At = int64(barrier)
			if err := r.applyAction(a, barrier); err != nil {
				continue
			}
			r.mu.Lock()
			r.applied++
			if a.Kind == ActIntensity {
				r.intensty = a.Intensity
			}
			r.mu.Unlock()
			if r.logW != nil {
				json.NewEncoder(r.logW).Encode(a)
			}
		}

		next := barrier.Add(r.step)
		if h := r.srv.Horizon(); next > h {
			next = h
		}
		done := r.srv.StepTo(next)
		barrier = next

		r.mu.Lock()
		r.publishLocked(done)
		if done {
			r.done = true
			r.result = r.srv.Finish()
			r.summary = renderSummary(r.cfg, r.result, r.meter.Counters(), r.meter.Hist(), r.applied)
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()

		if pace > 0 {
			time.Sleep(time.Duration(float64(r.step.Std()) / pace))
		}
	}
}

// applyAction mutates the simulation at a barrier.
func (r *Runner) applyAction(a Action, at sim.Time) error {
	switch a.Kind {
	case ActIntensity:
		return r.srv.SetIntensity(a.Intensity)
	case ActHarvestOnBlock:
		r.srv.SetHarvestOnBlock(a.On)
		return nil
	case ActResilience:
		r.srv.SetResilienceEnabled(a.On)
		return nil
	case ActFaults:
		return r.srv.InjectFaultPlan(a.Plan, at)
	default:
		return fmt.Errorf("serve: unknown action kind %q", a.Kind)
	}
}

// publishLocked refreshes the published snapshot and fans a TimePoint out
// to subscribers. Caller holds r.mu; the cluster server is quiescent (the
// loop goroutine is between StepTo calls).
func (r *Runner) publishLocked(done bool) {
	occ := r.srv.OccupancySnapshot()
	topo := r.srv.LiveTopology()
	hist := r.meter.Hist().Clone()
	c := r.meter.Counters()
	r.pub = State{
		Config:      r.cfg,
		SimTime:     r.srv.Now(),
		Horizon:     r.srv.Horizon(),
		Done:        done,
		Paused:      r.paused,
		Pace:        r.pace,
		Intensity:   r.intensty,
		EventsFired: r.srv.EventsFired(),
		Actions:     r.applied,
		Counters:    c,
		Hist:        hist,
		Occupancy:   occ,
		Topology:    topo,
	}
	tp := TimePoint{
		SimMS:       sim.Duration(r.pub.SimTime).Milliseconds(),
		Done:        done,
		Arrivals:    c.Arrivals,
		Completions: c.Completions,
		JobsDone:    c.JobsDone,
		Loans:       c.Loans,
		Reclaims:    c.Reclaims,
		P50MS:       hist.Quantile(0.50).Milliseconds(),
		P99MS:       hist.Quantile(0.99).Milliseconds(),
	}
	names := map[int]string{}
	for _, vm := range topo.VMs {
		names[vm.Idx] = vm.Name
	}
	for _, v := range occ.VMs {
		tp.VMs = append(tp.VMs, VMPoint{
			VM: v.VM, Name: names[v.VM], Running: v.Running, Blocked: v.Blocked,
			Queued: v.Queued, LentOut: v.LentOut, Pinned: v.Pinned, BusyCores: v.BusyCores,
		})
	}
	for ch := range r.subs {
		select {
		case ch <- tp:
		default: // slow subscriber: drop the point, never stall the loop
		}
	}
}

// State returns the latest published barrier snapshot.
func (r *Runner) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pub
}

// Enqueue validates a and queues it for the next barrier.
func (r *Runner) Enqueue(a Action) error {
	if err := a.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done || r.closing {
		return fmt.Errorf("serve: run is over, action not applicable")
	}
	r.pending = append(r.pending, a)
	return nil
}

// Pause stops the loop at the next barrier (wall-clock only; not logged).
func (r *Runner) Pause() {
	r.mu.Lock()
	r.paused = true
	r.publishPausedLocked()
	r.mu.Unlock()
}

// Resume restarts a paused loop.
func (r *Runner) Resume() {
	r.mu.Lock()
	r.paused = false
	r.publishPausedLocked()
	r.mu.Unlock()
	r.cond.Broadcast()
}

// StepBarrier advances one barrier while paused.
func (r *Runner) StepBarrier() error {
	r.mu.Lock()
	defer func() { r.mu.Unlock(); r.cond.Broadcast() }()
	if !r.paused {
		return fmt.Errorf("serve: step requires a paused run")
	}
	r.stepsOK++
	return nil
}

// publishPausedLocked keeps the published pause flag current without
// waiting for the next barrier.
func (r *Runner) publishPausedLocked() {
	r.pub.Paused = r.paused
	r.pub.Pace = r.pace
}

// SetPace changes the simulated-seconds-per-wall-second rate (0 = unpaced).
func (r *Runner) SetPace(p float64) {
	r.mu.Lock()
	r.pace = p
	r.publishPausedLocked()
	r.mu.Unlock()
}

// Shutdown asks the loop to exit at the next barrier and signals the
// process-level waiters. Idempotent.
func (r *Runner) Shutdown() {
	r.shutdownMu.Do(func() {
		r.mu.Lock()
		r.closing = true
		r.mu.Unlock()
		r.cond.Broadcast()
		close(r.shutdownCh)
	})
}

// ShutdownRequested is closed once Shutdown has been called.
func (r *Runner) ShutdownRequested() <-chan struct{} { return r.shutdownCh }

// Done reports whether the run reached its horizon.
func (r *Runner) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Summary returns the deterministic end-of-run summary once Done.
func (r *Runner) Summary() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.summary, r.done
}

// Subscribe registers a timeseries listener; cancel unregisters it and
// closes the channel. Points published while the channel is full are
// dropped.
func (r *Runner) Subscribe(buf int) (<-chan TimePoint, func()) {
	ch := make(chan TimePoint, buf)
	r.mu.Lock()
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		if _, ok := r.subs[ch]; ok {
			delete(r.subs, ch)
			close(ch)
		}
		r.mu.Unlock()
	}
	return ch, cancel
}
