// Package vm models the virtual machines of a HardHarvest server: Primary
// VMs with a fixed core allocation running one latency-critical microservice
// each, and Harvest VMs that are configured with as many vCPUs as the server
// has pCPUs and multiplex those vCPUs onto however many physical cores they
// currently hold (their own plus harvested ones), as SmartHarvest-style
// deployments do (§4.1.5).
package vm

import "fmt"

// Kind discriminates Primary and Harvest VMs.
type Kind int

const (
	// Primary VMs run latency-critical microservices with fixed cores.
	Primary Kind = iota
	// Harvest VMs run batch applications and grow by harvesting cores.
	Harvest
)

func (k Kind) String() string {
	if k == Primary {
		return "primary"
	}
	return "harvest"
}

// VM describes one virtual machine.
type VM struct {
	ID    int
	Kind  Kind
	Cores int // allocated (owned) cores

	// vCPUs is the Harvest VM's virtual CPU count (== server pCPUs so no
	// guest changes are needed when cores come and go); 0 for Primary VMs.
	vCPUs int
	// currentPCPUs is the number of physical cores the Harvest VM holds
	// right now (owned + harvested).
	currentPCPUs int
}

// NewPrimary builds a Primary VM with the given cores.
func NewPrimary(id, cores int) *VM {
	if cores <= 0 {
		panic("vm: primary VM needs cores")
	}
	return &VM{ID: id, Kind: Primary, Cores: cores}
}

// NewHarvest builds a Harvest VM with its initial cores and a vCPU count
// equal to the server's pCPUs.
func NewHarvest(id, cores, serverPCPUs int) *VM {
	if cores < 0 || serverPCPUs <= 0 {
		panic("vm: invalid harvest VM shape")
	}
	return &VM{ID: id, Kind: Harvest, Cores: cores, vCPUs: serverPCPUs, currentPCPUs: cores}
}

// VCPUs reports the Harvest VM's virtual CPU count.
func (v *VM) VCPUs() int { return v.vCPUs }

// PCPUs reports the physical cores the VM currently holds.
func (v *VM) PCPUs() int {
	if v.Kind == Primary {
		return v.Cores
	}
	return v.currentPCPUs
}

// Grow records a harvested core joining the Harvest VM. The guest needs no
// reconfiguration: a vCPU simply starts running.
func (v *VM) Grow() error {
	if v.Kind != Harvest {
		return fmt.Errorf("vm: %d is not a harvest VM", v.ID)
	}
	if v.currentPCPUs >= v.vCPUs {
		return fmt.Errorf("vm: %d already holds all %d vCPUs worth of cores", v.ID, v.vCPUs)
	}
	v.currentPCPUs++
	return nil
}

// Shrink records a core being reclaimed from the Harvest VM; its vCPUs are
// multiplexed onto the remaining cores, so forward progress is preserved
// (preempted threads holding locks eventually run again, §4.1.5).
func (v *VM) Shrink() error {
	if v.Kind != Harvest {
		return fmt.Errorf("vm: %d is not a harvest VM", v.ID)
	}
	if v.currentPCPUs <= v.Cores {
		return fmt.Errorf("vm: %d already at its owned core count", v.ID)
	}
	v.currentPCPUs--
	return nil
}

// Oversubscription reports the vCPU:pCPU ratio of a Harvest VM; 1.0 means no
// multiplexing pressure.
func (v *VM) Oversubscription() float64 {
	if v.Kind == Primary || v.currentPCPUs == 0 {
		return 1
	}
	return float64(v.vCPUs) / float64(v.currentPCPUs)
}
