package vm

import "testing"

func TestPrimaryVM(t *testing.T) {
	p := NewPrimary(1, 4)
	if p.Kind != Primary || p.PCPUs() != 4 {
		t.Fatalf("primary = %+v", p)
	}
	if p.Oversubscription() != 1 {
		t.Fatal("primary oversubscription should be 1")
	}
	if err := p.Grow(); err == nil {
		t.Fatal("primary VM must not grow")
	}
	if err := p.Shrink(); err == nil {
		t.Fatal("primary VM must not shrink")
	}
}

func TestHarvestGrowShrink(t *testing.T) {
	h := NewHarvest(9, 4, 36)
	if h.VCPUs() != 36 {
		t.Fatalf("vCPUs = %d, want server pCPUs", h.VCPUs())
	}
	if h.PCPUs() != 4 {
		t.Fatalf("initial pCPUs = %d", h.PCPUs())
	}
	for i := 0; i < 8; i++ {
		if err := h.Grow(); err != nil {
			t.Fatal(err)
		}
	}
	if h.PCPUs() != 12 {
		t.Fatalf("pCPUs after growth = %d", h.PCPUs())
	}
	if o := h.Oversubscription(); o != 3 {
		t.Fatalf("oversubscription = %v, want 36/12", o)
	}
	for i := 0; i < 8; i++ {
		if err := h.Shrink(); err != nil {
			t.Fatal(err)
		}
	}
	if h.PCPUs() != 4 {
		t.Fatalf("pCPUs after shrink = %d", h.PCPUs())
	}
	// Cannot shrink below owned cores.
	if err := h.Shrink(); err == nil {
		t.Fatal("shrink below owned cores should fail")
	}
}

func TestHarvestGrowthCap(t *testing.T) {
	h := NewHarvest(9, 34, 36)
	if err := h.Grow(); err != nil {
		t.Fatal(err)
	}
	if err := h.Grow(); err != nil {
		t.Fatal(err)
	}
	// 36 pCPUs == 36 vCPUs: full.
	if err := h.Grow(); err == nil {
		t.Fatal("growth past vCPU count should fail")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"primary-no-cores": func() { NewPrimary(1, 0) },
		"harvest-bad":      func() { NewHarvest(1, -1, 36) },
		"harvest-no-pcpus": func() { NewHarvest(1, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	if Primary.String() != "primary" || Harvest.String() != "harvest" {
		t.Fatal("kind strings")
	}
}
