// Package jsonx holds the shared config-ingestion error helpers: every
// user-authored JSON document the simulator accepts (fault plans, serve
// action logs, scenario files) reports parse failures with an exact
// line/column position instead of a bare byte offset. The helpers live in
// one place so the diagnostics stay uniform across ingestion paths.
package jsonx

import (
	"encoding/json"
	"fmt"
)

// LineCol converts a 0-based byte offset into 1-based line and column
// numbers. Offsets past the end of data clamp to the final position, so a
// decoder offset that points one past the last byte still resolves.
func LineCol(data []byte, off int64) (line, col int) {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	line, col = 1, 1
	for _, b := range data[:off] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// DescribeError augments a json decode error with "line L, column C"
// position when the error carries a byte offset (syntax and type errors
// do); other errors pass through unchanged.
func DescribeError(data []byte, err error) string {
	var off int64 = -1
	switch e := err.(type) {
	case *json.SyntaxError:
		off = e.Offset
	case *json.UnmarshalTypeError:
		off = e.Offset
	}
	if off < 0 || off > int64(len(data)) {
		return err.Error()
	}
	line, col := LineCol(data, off)
	return fmt.Sprintf("line %d, column %d: %s", line, col, err.Error())
}
