package jsonx

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestLineCol(t *testing.T) {
	data := []byte("ab\ncd\n\nxyz")
	tests := []struct {
		off       int64
		line, col int
	}{
		{0, 1, 1},
		{1, 1, 2},
		{2, 1, 3},  // at the first newline, still line 1
		{3, 2, 1},  // first byte after it
		{6, 3, 1},  // empty line
		{7, 4, 1},  // start of "xyz"
		{10, 4, 4}, // one past the last byte
		{99, 4, 4}, // clamped
	}
	for _, tc := range tests {
		line, col := LineCol(data, tc.off)
		if line != tc.line || col != tc.col {
			t.Errorf("LineCol(off=%d) = %d:%d, want %d:%d", tc.off, line, col, tc.line, tc.col)
		}
	}
}

// TestDescribeErrorOffsets pins the exact line/column reported for decode
// errors on multi-line documents: the position must land on the offending
// token, proving the offset-to-line conversion is not off by the document
// copy it used to be computed against.
func TestDescribeErrorOffsets(t *testing.T) {
	type target struct {
		A string `json:"a"`
		B int    `json:"b"`
	}
	tests := []struct {
		name string
		doc  string
		want string
	}{
		{
			name: "syntax error line 3",
			doc:  "{\n  \"a\": \"x\",\n  \"b\": }\n}",
			want: "line 3, column 9:",
		},
		{
			name: "type error line 2",
			doc:  "{\n  \"a\": 7,\n  \"b\": 1\n}",
			want: "line 2, column 9:",
		},
		{
			name: "type error deep line 4",
			doc:  "{\n  \"a\": \"ok\",\n\n  \"b\": \"not an int\"\n}",
			want: "line 4, column 20:",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var v target
			err := json.Unmarshal([]byte(tc.doc), &v)
			if err == nil {
				t.Fatal("document unexpectedly decoded")
			}
			got := DescribeError([]byte(tc.doc), err)
			if !strings.HasPrefix(got, tc.want) {
				t.Errorf("DescribeError = %q, want prefix %q", got, tc.want)
			}
		})
	}
}

func TestDescribeErrorPassthrough(t *testing.T) {
	err := errors.New("no offset here")
	if got := DescribeError([]byte("{}"), err); got != "no offset here" {
		t.Errorf("non-positional error mangled: %q", got)
	}
}
