// Package route is the fleet front door: a deterministic router that
// admits the scenario workload at its own ShardGroup member and dispatches
// requests to fleet servers over Link/Send edges with a fixed per-edge
// network delay, instead of each server generating arrivals in isolation.
//
// The router carries the fleet's robustness machinery: pluggable balancing
// policies (round-robin, least-outstanding, weighted by hardware
// generation), simulated-time health checks, outlier ejection (a
// consecutive-failure circuit breaker with exponential half-open
// re-admission), failover retries for requests stranded on crashed or
// ejected servers, and graceful drain. Every decision is a pure function
// of the scenario seed and the deterministic ShardGroup delivery order, so
// routed runs are byte-identical at any worker count.
//
// Request timeline: a front-door generator replicates the per-VM workload
// model of the servers it feeds (profiles, load scale, trace modulation,
// flash batches) on independent RNG streams. Each generated request is
// dispatched to one backend; the server admits it (cluster.AdmitRemote),
// runs it through its full NIC/queue/execute pipeline, and reports
// completion or shed back over the reverse edge. When a backend crashes,
// turns unhealthy, is ejected, or is drained past its deadline, the
// attempts stranded on it are re-dispatched elsewhere — bounded by the
// failover budget — while the stranded attempts keep running server-side
// (fail-stop with durable queues): their late replies are counted as
// zombies, never double-resolving a request.
package route

import (
	"fmt"

	"hardharvest/internal/cluster"
	"hardharvest/internal/sim"
	"hardharvest/internal/stats"
	"hardharvest/internal/trace"
	"hardharvest/internal/workload"
)

// genSeedSalt derives the front-door generator streams from each source
// server's seed, independent from every stream the server itself draws.
const genSeedSalt = 0x6c62272e07bb0142

// Config selects the router's policies. DefaultConfig returns the values
// the scenario layer uses when a routing block leaves a field unset.
type Config struct {
	// Policy picks the balancing policy (see Policy).
	Policy Policy
	// NetDelay is the fixed per-edge network delay and ShardGroup
	// lookahead between the router and every server, each direction.
	NetDelay sim.Duration
	// ProbeInterval is the simulated-time health-check cadence; a probe
	// round-trips one NetDelay each way and reports whether the server is
	// inside a crash window.
	ProbeInterval sim.Duration
	// UnhealthyAfter / HealthyAfter are the consecutive probe-failure and
	// probe-success streaks that flip a backend's health state.
	UnhealthyAfter int
	HealthyAfter   int
	// EjectAfter is the consecutive request-failure (shed) count that
	// trips the outlier circuit breaker; 0 disables ejection.
	EjectAfter int
	// EjectBackoff is the first re-admission delay after an ejection;
	// repeat ejections back off exponentially (x2 each, capped at 2^10).
	// Re-admission is half-open: one more failure re-ejects immediately.
	EjectBackoff sim.Duration
	// MaxFailovers bounds how many times one request may be re-dispatched
	// after its attempt was stranded on a crashed/unhealthy/ejected/
	// drained backend (the fleet-level retry budget).
	MaxFailovers int
}

// DefaultConfig returns the router defaults.
func DefaultConfig() Config {
	return Config{
		Policy:         RoundRobin,
		NetDelay:       20 * sim.Microsecond,
		ProbeInterval:  5 * sim.Millisecond,
		UnhealthyAfter: 2,
		HealthyAfter:   2,
		EjectAfter:     5,
		EjectBackoff:   20 * sim.Millisecond,
		MaxFailovers:   2,
	}
}

// Validate returns the first configuration problem with its field name.
func (c Config) Validate() error {
	switch {
	case c.Policy < RoundRobin || c.Policy > Weighted:
		return fmt.Errorf("routing.policy: unknown policy %d", int(c.Policy))
	case c.NetDelay <= 0:
		return fmt.Errorf("routing.network_delay_us: must be positive, got %v", c.NetDelay)
	case c.ProbeInterval <= 0:
		return fmt.Errorf("routing.probe_interval_ms: must be positive, got %v", c.ProbeInterval)
	case c.UnhealthyAfter <= 0:
		return fmt.Errorf("routing.unhealthy_after: must be positive, got %d", c.UnhealthyAfter)
	case c.HealthyAfter <= 0:
		return fmt.Errorf("routing.healthy_after: must be positive, got %d", c.HealthyAfter)
	case c.EjectAfter < 0:
		return fmt.Errorf("routing.eject_after: must be non-negative, got %d", c.EjectAfter)
	case c.EjectAfter > 0 && c.EjectBackoff <= 0:
		return fmt.Errorf("routing.eject_backoff_ms: must be positive with ejection on, got %v", c.EjectBackoff)
	case c.MaxFailovers < 0:
		return fmt.Errorf("routing.max_failovers: must be non-negative, got %d", c.MaxFailovers)
	}
	return nil
}

// Backend describes one fleet server the router feeds. Cfg is the config
// the server was built from: the front door replicates its workload shape
// (profiles, load scale, trace modulation) on independent streams, and
// aligns its own timeline with the server's run window.
type Backend struct {
	Server *cluster.Server
	Cfg    cluster.Config
	Name   string
	// Weight biases the Weighted policy (use 1/exec-factor so newer
	// hardware generations draw proportionally more traffic); <= 0 means 1.
	Weight float64
}

// Router event opcodes (sim.Callback).
const (
	rOpGen           int32 = iota // a: *genState — front-door arrival fired
	rOpProbeTick                  // periodic health-check round
	rOpReadmit                    // a: *backendRT — ejection backoff elapsed
	rOpDrainDeadline              // a: *backendRT — drain deadline reached
	rOpReply                      // a: *replyMsg — done/shed reply from a server
	rOpProbeReply                 // a: *probeReply — health probe answer
	rOpCrash                      // a: *crashMsg — crash/recovery notification
)

// Cross-member message payloads. One small object is allocated per message:
// payloads cross goroutine boundaries between windows, so pooling them on
// either side would race.
type dispatchMsg struct {
	vm      int
	attempt uint64
}

type replyMsg struct {
	attempt uint64
	lat     sim.Duration
	shed    bool
}

type probeMsg struct{ backend int }

type probeReply struct {
	backend int
	ok      bool
}

type crashMsg struct {
	backend int
	down    bool
}

// pendingReq is the router's view of one logical request from generation
// to resolution (completed, shed, or lost).
type pendingReq struct {
	vm       int
	born     sim.Time
	measured bool
	// nAttempts counts dispatches; cur is the current attempt's id. An
	// attempt superseded by failover stays outstanding on its old backend
	// until its zombie reply arrives.
	nAttempts   int
	cur         uint64
	outstanding int
	resolved    bool
}

// attemptRec tracks one dispatched attempt until its reply arrives.
type attemptRec struct {
	req     *pendingReq
	backend int
	sentAt  sim.Time
}

// genState is one front-door arrival generator, replicating the workload
// of one (source server, VM) pair.
type genState struct {
	src int
	vm  int
	gen *workload.Generator
	// nextAt carries the generated arrival time between scheduling and the
	// rOpGen event; the sampled invocation is discarded — phases are
	// sampled server-side on admission.
	nextAt sim.Time
}

// srcRT carries the per-source-server flash-batch state.
type srcRT struct {
	batchRNG  *stats.RNG
	batchProb float64
	batchMean float64
}

// Router is the fleet front door. It owns its own sim.Engine and joins the
// scenario's ShardGroup as a regular member; all interaction with servers
// flows over declared Link/Send edges.
type Router struct {
	cfg      Config
	eng      *sim.Engine
	group    *sim.ShardGroup
	self     int
	backends []*backendRT
	srcs     []*srcRT
	gens     []*genState

	measureStart sim.Time
	measureEnd   sim.Time
	stopArrivals sim.Time
	horizon      sim.Time

	attemptSeq uint64
	attempts   map[uint64]*attemptRec
	rr         uint64
	eligible   []int

	// Fleet counters (see Result for meanings).
	generated         uint64
	initialDispatches uint64
	dispatches        uint64
	failovers         uint64
	completions       uint64
	sheds             uint64
	lost              uint64
	lostAtAdmit       uint64
	doneRecv          uint64
	shedRecv          uint64
	zombieDones       uint64
	zombieSheds       uint64
	probes            uint64
	probeFails        uint64
	ejections         uint64
	readmits          uint64
	drains            uint64

	fleetLat *stats.Sketch
}

// New builds a router over the given backends. Every backend must share
// the same run window and primary-VM count (the scenario layer validates
// this before construction; New panics otherwise).
func New(cfg Config, specs []Backend) *Router {
	if err := cfg.Validate(); err != nil {
		panic("route: " + err.Error())
	}
	if len(specs) == 0 {
		panic("route: no backends")
	}
	rt := &Router{
		cfg:      cfg,
		eng:      sim.NewEngine(),
		attempts: make(map[uint64]*attemptRec),
		fleetLat: stats.NewSketch(),
	}
	rt.measureStart, rt.measureEnd, rt.stopArrivals, rt.horizon = specs[0].Cfg.RunWindow()
	for si, spec := range specs {
		c := spec.Cfg
		_, me, _, _ := c.RunWindow()
		if me != rt.measureEnd || c.PrimaryVMs != specs[0].Cfg.PrimaryVMs {
			panic("route: backends disagree on run window or primary-VM count")
		}
		w := spec.Weight
		if w <= 0 {
			w = 1
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("backend[%d]", si)
		}
		rt.backends = append(rt.backends, &backendRT{
			idx: si, name: name, srv: spec.Server, weight: w,
			healthy: true, edgeLat: stats.NewSketch(),
		})

		// Replicate the server's per-VM workload model on streams derived
		// from a salted root: the server's own streams stay untouched.
		profiles := c.Profiles
		if profiles == nil {
			profiles = workload.Profiles()
		}
		seriesParams := trace.DefaultSeriesParams()
		seriesParams.Steps = c.TraceSteps
		root := stats.NewRNG(c.Seed ^ genSeedSalt)
		seriesRNG := root.Split(4)
		instRNG := root.Split(5)
		rt.srcs = append(rt.srcs, &srcRT{
			batchRNG:  root.Split(6),
			batchProb: c.BurstBatchProb,
			batchMean: c.BurstBatchMean,
		})
		for i := 0; i < c.PrimaryVMs; i++ {
			p := *profiles[i]
			p.BaseRPSPerCore *= c.LoadScale
			var series []float64
			if c.TraceSteps > 0 {
				inst := trace.GenerateInstances(instRNG, 1)[0]
				series = inst.Series(seriesRNG.Split(uint64(i)), seriesParams)
			}
			rt.gens = append(rt.gens, &genState{
				src: si, vm: i,
				gen: workload.NewGenerator(&p, c.CoresPerPrimary, series, c.TraceStep, root.Split(uint64(100+i))),
			})
		}
	}
	return rt
}

// Engine exposes the router's engine for ShardGroup membership.
func (rt *Router) Engine() *sim.Engine { return rt.eng }

// Bind wires the router into its ShardGroup after membership and links are
// declared: self is the router's member index, members[i] the index of
// backend i. Bind installs each server's RemoteHooks (so call it before the
// servers Start) and schedules the router's initial events.
func (rt *Router) Bind(g *sim.ShardGroup, self int, members []int) {
	if len(members) != len(rt.backends) {
		panic("route: member count mismatch")
	}
	rt.group = g
	rt.self = self
	for i, b := range rt.backends {
		b.member = members[i]
		b.port = &port{rt: rt, b: b}
		idx := i
		b.srv.SetRemoteHooks(cluster.RemoteHooks{
			Done: func(id uint64, lat sim.Duration) {
				rt.sendReply(rt.backends[idx], &replyMsg{attempt: id, lat: lat})
			},
			Shed: func(id uint64) {
				rt.sendReply(rt.backends[idx], &replyMsg{attempt: id, shed: true})
			},
			Crash: func(down bool) {
				b := rt.backends[idx]
				g.Send(b.member, rt.self, rt.cfg.NetDelay, rt, rOpCrash,
					&crashMsg{backend: idx, down: down}, nil)
			},
		})
	}
	for _, gs := range rt.gens {
		rt.scheduleNextGen(gs)
	}
	rt.eng.ScheduleCall(rt.cfg.ProbeInterval, rt, rOpProbeTick, nil, nil)
}

func (rt *Router) sendReply(b *backendRT, m *replyMsg) {
	rt.group.Send(b.member, rt.self, rt.cfg.NetDelay, rt, rOpReply, m, nil)
}

// Action is one scheduled router reconfiguration (scenario timeline/events
// compiled for routed mode); actions apply at their time, in (At, Seq)
// order.
type Action struct {
	At  sim.Time
	Seq int
	Fn  func(*Router)
}

// SetActions installs the compiled action schedule (must be sorted by
// (At, Seq)) as engine events. Call before the group runs: the group's
// conservative windows derive member floors from pending engine events, so
// an action applied outside the event queue would be invisible to the
// window computation and could let other members advance past it.
func (rt *Router) SetActions(acts []Action) {
	for _, a := range acts {
		a := a
		rt.eng.At(a.At, func() { a.Fn(rt) })
	}
}

// Advance is the router's ShardGroup advance function: run the engine up to
// the window cap (actions are regular engine events, see SetActions).
func (rt *Router) Advance(to sim.Time) {
	if to > rt.horizon {
		to = rt.horizon
	}
	rt.eng.Run(to)
}

func (rt *Router) now() sim.Time { return rt.eng.Now() }

func (rt *Router) measuring() bool {
	t := rt.now()
	return t >= rt.measureStart && t < rt.measureEnd
}

// OnEvent dispatches the router's typed engine events (sim.Callback).
func (rt *Router) OnEvent(op int32, a, b any) {
	switch op {
	case rOpGen:
		rt.genFired(a.(*genState))
	case rOpProbeTick:
		rt.probeTick()
	case rOpReadmit:
		rt.readmit(a.(*backendRT))
	case rOpDrainDeadline:
		rt.drainDeadline(a.(*backendRT))
	case rOpReply:
		rt.onReply(a.(*replyMsg))
	case rOpProbeReply:
		rt.onProbeReply(a.(*probeReply))
	case rOpCrash:
		rt.onCrash(a.(*crashMsg))
	default:
		panic(fmt.Sprintf("route: unknown event op %d", op))
	}
}

// ---- Generation and dispatch ----

func (rt *Router) scheduleNextGen(gs *genState) {
	a := gs.gen.Next()
	if a.At >= rt.stopArrivals {
		return
	}
	gs.nextAt = a.At
	rt.eng.CallAt(a.At, rt, rOpGen, gs, nil)
}

// genFired admits one generated request (plus any correlated flash batch,
// mirroring the servers' local arrival model) and schedules the next.
func (rt *Router) genFired(gs *genState) {
	rt.admit(gs)
	src := rt.srcs[gs.src]
	if src.batchProb > 0 && src.batchRNG.Float64() < src.batchProb {
		extra := 0
		for src.batchRNG.Float64() < 1-1/src.batchMean && extra < 16 {
			extra++
		}
		for i := 0; i < extra; i++ {
			rt.admit(gs)
		}
	}
	rt.scheduleNextGen(gs)
}

// admit creates the logical request and dispatches its first attempt; with
// no eligible backend the request is lost at the door.
func (rt *Router) admit(gs *genState) {
	rt.generated++
	req := &pendingReq{vm: gs.vm, born: rt.now(), measured: rt.measuring()}
	if rt.dispatch(req) {
		rt.initialDispatches++
	} else {
		req.resolved = true
		rt.lostAtAdmit++
		rt.lost++
	}
}

// dispatch sends one attempt of req to a policy-chosen eligible backend.
func (rt *Router) dispatch(req *pendingReq) bool {
	b := rt.pick()
	if b == nil {
		return false
	}
	rt.attemptSeq++
	id := rt.attemptSeq
	rt.attempts[id] = &attemptRec{req: req, backend: b.idx, sentAt: rt.now()}
	req.cur = id
	req.nAttempts++
	req.outstanding++
	b.active = append(b.active, id)
	b.dispatches++
	rt.dispatches++
	rt.group.Send(rt.self, b.member, rt.cfg.NetDelay, b.port, pOpDispatch,
		&dispatchMsg{vm: req.vm, attempt: id}, nil)
	return true
}

// onReply resolves one attempt's fate. A reply for a superseded or already
// resolved request is a zombie: the stranded attempt kept running on its
// server and its outcome is counted but never re-resolves the request.
func (rt *Router) onReply(m *replyMsg) {
	rec := rt.attempts[m.attempt]
	if rec == nil {
		panic(fmt.Sprintf("route: reply for unknown attempt %d", m.attempt))
	}
	delete(rt.attempts, m.attempt)
	req := rec.req
	req.outstanding--
	b := rt.backends[rec.backend]
	live := !req.resolved && req.cur == m.attempt
	if m.shed {
		rt.shedRecv++
		if live {
			rt.removeActive(b, m.attempt)
			req.resolved = true
			rt.sheds++
			b.sheds++
		} else {
			rt.zombieSheds++
			b.zombieSheds++
		}
		rt.noteFailure(b)
		return
	}
	rt.doneRecv++
	b.consecFail = 0
	if live {
		rt.removeActive(b, m.attempt)
		req.resolved = true
		rt.completions++
		b.dones++
		if req.measured {
			rt.fleetLat.Add(rt.now().Sub(req.born).Milliseconds())
			b.edgeLat.Add(rt.now().Sub(rec.sentAt).Milliseconds())
		}
	} else {
		rt.zombieDones++
		b.zombieDones++
	}
}

func (rt *Router) removeActive(b *backendRT, id uint64) {
	for i, v := range b.active {
		if v == id {
			b.active = append(b.active[:i], b.active[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("route: attempt %d not active on %s", id, b.name))
}

// failoverActive re-dispatches every attempt stranded on b (crash,
// unhealthy, ejection, or drain deadline — b must already be ineligible).
// The stranded attempts stay outstanding server-side: their eventual
// replies are zombies. Requests out of failover budget, or with no
// eligible backend left, are lost.
func (rt *Router) failoverActive(b *backendRT) {
	if len(b.active) == 0 {
		return
	}
	stranded := append([]uint64(nil), b.active...)
	b.active = b.active[:0]
	for _, id := range stranded {
		req := rt.attempts[id].req
		if req.nAttempts <= rt.cfg.MaxFailovers && rt.dispatch(req) {
			rt.failovers++
			b.failoversOut++
		} else {
			req.resolved = true
			rt.lost++
			b.lost++
		}
	}
}

// ---- Scenario-facing reconfiguration ----

// SetIntensity scales every generator fed by source server src (x > 0).
func (rt *Router) SetIntensity(src int, x float64) {
	for _, gs := range rt.gens {
		if gs.src == src {
			gs.gen.SetIntensity(x)
		}
	}
}

// SetVMIntensity scales one (source server, VM) generator.
func (rt *Router) SetVMIntensity(src, vm int, x float64) {
	for _, gs := range rt.gens {
		if gs.src == src && gs.vm == vm {
			gs.gen.SetIntensity(x)
		}
	}
}

// Intensity reports one (source server, VM) generator's current intensity.
func (rt *Router) Intensity(src, vm int) float64 {
	for _, gs := range rt.gens {
		if gs.src == src && gs.vm == vm {
			return gs.gen.Intensity()
		}
	}
	return 0
}

// StartDrain begins a graceful drain of backend idx: new dispatch stops
// now, in-flight attempts may finish until the deadline, and whatever
// remains then fails over. Idempotent while a drain is in progress.
func (rt *Router) StartDrain(idx int, deadline sim.Duration) {
	b := rt.backends[idx]
	if b.draining || b.drained {
		return
	}
	b.draining = true
	b.drains++
	rt.drains++
	rt.eng.ScheduleCall(deadline, rt, rOpDrainDeadline, b, nil)
}

func (rt *Router) drainDeadline(b *backendRT) {
	if !b.draining {
		return // a crash emptied the backend first
	}
	b.draining = false
	b.drained = true
	rt.failoverActive(b)
}
