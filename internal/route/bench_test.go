package route

import "testing"

// BenchmarkRoutedFleet pins the cost of a full routed-fleet run: a router
// plus three servers, single worker, default policy. Guards the routed
// path's allocation profile.
func BenchmarkRoutedFleet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, _ := runFleet(b, fleetSpec{n: 3, workers: 1, rc: DefaultConfig()})
		if res.Completions == 0 {
			b.Fatal("no completions")
		}
	}
}
