package route

import (
	"hardharvest/internal/stats"
	"hardharvest/internal/validate"
)

// Result summarizes one routed-fleet run from the router's side.
type Result struct {
	Policy Policy

	// Request ledger (logical units of work).
	Generated   uint64
	Completions uint64
	Sheds       uint64
	Lost        uint64
	LostAtAdmit uint64
	InflightEnd uint64

	// Attempt ledger (dispatches to backends).
	InitialDispatches uint64
	Dispatches        uint64
	Failovers         uint64
	DoneRecv          uint64
	ShedRecv          uint64
	ZombieDones       uint64
	ZombieSheds       uint64
	OutstandingEnd    uint64

	// Health/ejection/drain machinery.
	Probes     uint64
	ProbeFails uint64
	Ejections  uint64
	Readmits   uint64
	Drains     uint64

	// FleetLatency sketches measured end-to-end latencies (milliseconds,
	// generation to live completion at the router).
	FleetLatency *stats.Sketch

	Backends []BackendResult
}

// BackendResult is one backend's routed view.
type BackendResult struct {
	Name  string
	State string // healthy | unhealthy | down | ejected | draining | drained

	Dispatches   uint64
	Dones        uint64
	Sheds        uint64
	ZombieDones  uint64
	ZombieSheds  uint64
	FailoversOut uint64 // attempts stranded here and re-dispatched elsewhere
	Lost         uint64 // requests lost when stranded here out of budget/fleet

	Probes          uint64
	ProbeFails      uint64
	UnhealthySpells uint64
	Ejections       uint64
	Drains          uint64
	Crashes         uint64

	ActiveEnd int // live attempts still routed here at the end

	// EdgeLatency sketches measured dispatch-to-completion round trips
	// through this backend (milliseconds, observed at the router).
	EdgeLatency *stats.Sketch
}

// Finish returns the run's routed results after the ShardGroup reached the
// horizon.
func (rt *Router) Finish() *Result { return rt.Snapshot() }

// Snapshot returns the same ledger view at any quiescent point — between
// ShardGroup windows, no advance goroutines live. Counters are value
// copies; the latency sketches are the router's own (clone or extract
// quantiles before publishing across goroutines).
func (rt *Router) Snapshot() *Result {
	res := &Result{
		Policy:            rt.cfg.Policy,
		Generated:         rt.generated,
		Completions:       rt.completions,
		Sheds:             rt.sheds,
		Lost:              rt.lost,
		LostAtAdmit:       rt.lostAtAdmit,
		InflightEnd:       rt.generated - rt.completions - rt.sheds - rt.lost,
		InitialDispatches: rt.initialDispatches,
		Dispatches:        rt.dispatches,
		Failovers:         rt.failovers,
		DoneRecv:          rt.doneRecv,
		ShedRecv:          rt.shedRecv,
		ZombieDones:       rt.zombieDones,
		ZombieSheds:       rt.zombieSheds,
		OutstandingEnd:    uint64(len(rt.attempts)),
		Probes:            rt.probes,
		ProbeFails:        rt.probeFails,
		Ejections:         rt.ejections,
		Readmits:          rt.readmits,
		Drains:            rt.drains,
		FleetLatency:      rt.fleetLat,
	}
	for _, b := range rt.backends {
		res.Backends = append(res.Backends, BackendResult{
			Name:            b.name,
			State:           b.state(),
			Dispatches:      b.dispatches,
			Dones:           b.dones,
			Sheds:           b.sheds,
			ZombieDones:     b.zombieDones,
			ZombieSheds:     b.zombieSheds,
			FailoversOut:    b.failoversOut,
			Lost:            b.lost,
			Probes:          b.probes,
			ProbeFails:      b.probeFails,
			UnhealthySpells: b.unhealthySpells,
			Ejections:       b.ejections,
			Drains:          b.drains,
			Crashes:         b.crashes,
			ActiveEnd:       len(b.active),
			EdgeLatency:     b.edgeLat,
		})
	}
	return res
}

// Totals maps the result onto the fleet-conservation oracle's ledger.
func (r *Result) Totals() validate.FleetTotals {
	return validate.FleetTotals{
		Generated:         r.Generated,
		Completions:       r.Completions,
		Sheds:             r.Sheds,
		Lost:              r.Lost,
		LostAtAdmit:       r.LostAtAdmit,
		InflightEnd:       r.InflightEnd,
		InitialDispatches: r.InitialDispatches,
		Dispatches:        r.Dispatches,
		Failovers:         r.Failovers,
		DoneRecv:          r.DoneRecv,
		ShedRecv:          r.ShedRecv,
		ZombieDones:       r.ZombieDones,
		ZombieSheds:       r.ZombieSheds,
		OutstandingEnd:    r.OutstandingEnd,
	}
}

// Conservation runs the fleet-conservation oracle over the result.
func (r *Result) Conservation(name string) validate.Check {
	return validate.FleetConservation(name, r.Totals())
}
