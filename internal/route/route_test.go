package route

import (
	"fmt"
	"strings"
	"testing"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/faults"
	"hardharvest/internal/sim"
	"hardharvest/internal/validate"
)

func testBatch(tb testing.TB) *batch.Workload {
	tb.Helper()
	for _, w := range batch.Workloads() {
		if w.Name == "BFS" {
			return w
		}
	}
	tb.Fatal("BFS workload missing")
	return nil
}

// fleetSpec configures one testFleet run.
type fleetSpec struct {
	n       int
	workers int
	rc      Config
	// edit tweaks server i's config/options before construction.
	edit func(i int, cfg *cluster.Config, opts *cluster.Options)
	// actions install router actions before the run.
	actions []Action
}

// runFleet assembles a router plus n servers into a ShardGroup and runs it
// to the horizon.
func runFleet(tb testing.TB, spec fleetSpec) (*Result, []*cluster.ServerResult) {
	tb.Helper()
	var specs []Backend
	var servers []*cluster.Server
	for i := 0; i < spec.n; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Seed = 1000 + uint64(i)*7919
		cfg.WarmupDuration = 2 * sim.Millisecond
		cfg.MeasureDuration = 30 * sim.Millisecond
		opts := cluster.SystemOptions(cluster.HardHarvestBlock)
		opts.RemoteAdmission = true
		if spec.edit != nil {
			spec.edit(i, &cfg, &opts)
		}
		srv := cluster.NewServer(cfg, opts, testBatch(tb))
		servers = append(servers, srv)
		specs = append(specs, Backend{
			Server: srv, Cfg: cfg, Name: fmt.Sprintf("srv[%d]", i),
		})
	}
	rt := New(spec.rc, specs)
	g := sim.NewShardGroup(spec.workers)
	self := g.AddFunc(rt.Engine(), rt.Advance)
	var members []int
	for _, srv := range servers {
		s := srv
		m := g.AddFunc(srv.Engine(), func(to sim.Time) { s.StepTo(to) })
		g.Link(self, m, spec.rc.NetDelay)
		g.Link(m, self, spec.rc.NetDelay)
		members = append(members, m)
	}
	rt.Bind(g, self, members)
	rt.SetActions(spec.actions)
	for _, srv := range servers {
		srv.Start()
	}
	_, _, _, horizon := specs[0].Cfg.RunWindow()
	g.Run(horizon)
	var srvRes []*cluster.ServerResult
	for _, srv := range servers {
		srvRes = append(srvRes, srv.Finish())
	}
	return rt.Finish(), srvRes
}

// render flattens a Result into a comparable, human-readable string.
func render(r *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "policy=%v gen=%d init=%d disp=%d fo=%d done=%d shed=%d lost=%d lostAdmit=%d inflight=%d\n",
		r.Policy, r.Generated, r.InitialDispatches, r.Dispatches, r.Failovers,
		r.Completions, r.Sheds, r.Lost, r.LostAtAdmit, r.InflightEnd)
	fmt.Fprintf(&sb, "doneRecv=%d shedRecv=%d zd=%d zs=%d out=%d probes=%d pf=%d ej=%d re=%d dr=%d\n",
		r.DoneRecv, r.ShedRecv, r.ZombieDones, r.ZombieSheds, r.OutstandingEnd,
		r.Probes, r.ProbeFails, r.Ejections, r.Readmits, r.Drains)
	fmt.Fprintf(&sb, "lat n=%d sum=%.9f p50=%.9f p99=%.9f\n",
		r.FleetLatency.Count(), r.FleetLatency.Sum(), r.FleetLatency.P50(), r.FleetLatency.P99())
	for _, b := range r.Backends {
		fmt.Fprintf(&sb, "%s state=%s disp=%d done=%d shed=%d zd=%d zs=%d fo=%d lost=%d probes=%d pf=%d uh=%d ej=%d dr=%d cr=%d act=%d edge n=%d sum=%.9f\n",
			b.Name, b.State, b.Dispatches, b.Dones, b.Sheds, b.ZombieDones, b.ZombieSheds,
			b.FailoversOut, b.Lost, b.Probes, b.ProbeFails, b.UnhealthySpells,
			b.Ejections, b.Drains, b.Crashes, b.ActiveEnd,
			b.EdgeLatency.Count(), b.EdgeLatency.Sum())
	}
	return sb.String()
}

func mustConserve(t *testing.T, r *Result) {
	t.Helper()
	if c := r.Conservation("fleet"); !c.OK {
		t.Fatalf("fleet conservation violated: %s", c.Detail)
	}
}

// TestRoutedFleetBasic: a healthy 3-server fleet completes routed traffic,
// spreads dispatches over every backend, probes stay green, and the
// conservation identities hold.
func TestRoutedFleetBasic(t *testing.T) {
	res, srvRes := runFleet(t, fleetSpec{n: 3, workers: 2, rc: DefaultConfig()})
	mustConserve(t, res)
	if res.Generated == 0 || res.Completions == 0 {
		t.Fatalf("no routed traffic: %+v", res)
	}
	if res.Lost != 0 || res.Failovers != 0 || res.Ejections != 0 {
		t.Fatalf("healthy fleet saw loss/failover/ejection: lost=%d fo=%d ej=%d",
			res.Lost, res.Failovers, res.Ejections)
	}
	if res.Probes == 0 || res.ProbeFails != 0 {
		t.Fatalf("probes=%d probeFails=%d", res.Probes, res.ProbeFails)
	}
	if got := float64(res.Completions) / float64(res.Generated); got < 0.95 {
		t.Fatalf("completion ratio %.3f too low", got)
	}
	if res.FleetLatency.Count() == 0 || res.FleetLatency.P99() <= 0 {
		t.Fatal("fleet latency sketch empty")
	}
	for i, b := range res.Backends {
		if b.Dispatches == 0 {
			t.Fatalf("backend %d starved under round-robin", i)
		}
		if b.State != "healthy" {
			t.Fatalf("backend %d ended %s", i, b.State)
		}
		// Every dispatch is admitted server-side, minus messages still in
		// flight when the engines stopped.
		if got, want := uint64(srvRes[i].Arrivals), b.Dispatches; got > want || want-got > 8 {
			t.Fatalf("backend %d: server admitted %d of %d dispatches", i, got, want)
		}
		if srvRes[i].InvariantViolations != 0 {
			t.Fatalf("backend %d: %s", i, srvRes[i].FirstViolation)
		}
	}
}

// TestRoutedFleetDeterminism: the worker count is an execution detail —
// the rendered result must be byte-identical at 1, 2, and 8 workers and
// across repeats, for every policy.
func TestRoutedFleetDeterminism(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastOutstanding, Weighted} {
		rc := DefaultConfig()
		rc.Policy = pol
		spec := func(workers int) fleetSpec {
			return fleetSpec{n: 3, workers: workers, rc: rc,
				edit: func(i int, cfg *cluster.Config, opts *cluster.Options) {
					if i == 0 {
						cfg.FaultPlan = &faults.Plan{Events: []faults.ScriptedEvent{
							{AtMS: 10, Kind: "crash", DurationMS: 8},
						}}
					}
				}}
		}
		base := render(func() *Result { r, _ := runFleet(t, spec(1)); return r }())
		for _, workers := range []int{1, 2, 8} {
			got := render(func() *Result { r, _ := runFleet(t, spec(workers)); return r }())
			if got != base {
				t.Fatalf("policy %v: workers=%d diverged:\n--- workers=1\n%s--- workers=%d\n%s",
					pol, workers, base, workers, got)
			}
		}
	}
}

// TestFailoverOnCrash: a mid-run crash strands in-flight attempts; the
// router fails them over to the surviving servers, the crashed server's
// post-recovery completions count as zombies, nothing is lost, and the
// server is re-admitted by probes after recovery.
func TestFailoverOnCrash(t *testing.T) {
	res, srvRes := runFleet(t, fleetSpec{n: 3, workers: 4, rc: DefaultConfig(),
		edit: func(i int, cfg *cluster.Config, opts *cluster.Options) {
			if i == 0 {
				cfg.FaultPlan = &faults.Plan{Events: []faults.ScriptedEvent{
					{AtMS: 10, Kind: "crash", DurationMS: 10},
				}}
			}
		}})
	mustConserve(t, res)
	b0 := res.Backends[0]
	if b0.Crashes != 1 {
		t.Fatalf("backend 0 crashes = %d, want 1", b0.Crashes)
	}
	if res.Failovers == 0 || b0.FailoversOut == 0 {
		t.Fatalf("crash stranded nothing: failovers=%d", res.Failovers)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d requests despite failover budget and live fleet", res.Lost)
	}
	if res.ZombieDones == 0 {
		t.Fatal("durable-queue recovery produced no zombie completions")
	}
	if b0.State != "healthy" {
		t.Fatalf("backend 0 not re-admitted after recovery: %s", b0.State)
	}
	// The 10ms outage diverts traffic: survivors absorb more dispatches.
	if b0.Dispatches >= res.Backends[1].Dispatches {
		t.Fatalf("crashed backend kept full traffic share: %d vs %d",
			b0.Dispatches, res.Backends[1].Dispatches)
	}
	for i, sr := range srvRes {
		if sr.InvariantViolations != 0 {
			t.Fatalf("backend %d: %s", i, sr.FirstViolation)
		}
	}
}

// TestDrain: draining a backend stops new dispatch, lets in-flight work
// finish to the deadline, fails the rest over, and loses nothing.
func TestDrain(t *testing.T) {
	at := sim.Time(0).Add(10 * sim.Millisecond)
	res, _ := runFleet(t, fleetSpec{n: 3, workers: 2, rc: DefaultConfig(),
		actions: []Action{{At: at, Fn: func(rt *Router) {
			rt.StartDrain(0, 2*sim.Millisecond)
		}}}})
	mustConserve(t, res)
	b0 := res.Backends[0]
	if res.Drains != 1 || b0.Drains != 1 {
		t.Fatalf("drains = %d/%d, want 1/1", res.Drains, b0.Drains)
	}
	if b0.State != "drained" {
		t.Fatalf("backend 0 ended %s, want drained", b0.State)
	}
	if res.Lost != 0 {
		t.Fatalf("drain lost %d requests", res.Lost)
	}
	// No dispatches after the drain point: the drained share is well under
	// an equal split.
	if b0.Dispatches*2 >= res.Backends[1].Dispatches {
		t.Fatalf("drained backend kept receiving traffic: %d vs %d",
			b0.Dispatches, res.Backends[1].Dispatches)
	}
}

// TestEjection: a backend shedding every attempt trips the circuit breaker,
// gets ejected, and is re-admitted half-open after the backoff.
func TestEjection(t *testing.T) {
	rc := DefaultConfig()
	rc.EjectAfter = 3
	rc.EjectBackoff = 5 * sim.Millisecond
	res, _ := runFleet(t, fleetSpec{n: 3, workers: 2, rc: rc,
		edit: func(i int, cfg *cluster.Config, opts *cluster.Options) {
			if i == 0 {
				// Overload the door: shed effectively everything.
				opts.Resilience.MaxQueueDepth = 1
				cfg.LoadScale *= 2
			}
		}})
	mustConserve(t, res)
	b0 := res.Backends[0]
	if b0.Sheds+b0.ZombieSheds == 0 {
		t.Fatal("overloaded backend shed nothing")
	}
	if res.Ejections == 0 || b0.Ejections == 0 {
		t.Fatalf("breaker never tripped: sheds=%d consec-threshold=%d", b0.Sheds, rc.EjectAfter)
	}
	if res.Readmits == 0 {
		t.Fatal("ejected backend never re-admitted")
	}
	if res.Ejections < 2 {
		t.Fatalf("half-open re-admission did not re-eject a still-bad backend: %d", res.Ejections)
	}
}

// TestNoEligibleBackend: with the whole fleet inside a crash window,
// admissions are lost at the door and accounted as such.
func TestNoEligibleBackend(t *testing.T) {
	res, _ := runFleet(t, fleetSpec{n: 2, workers: 2, rc: DefaultConfig(),
		edit: func(i int, cfg *cluster.Config, opts *cluster.Options) {
			cfg.FaultPlan = &faults.Plan{Events: []faults.ScriptedEvent{
				{AtMS: 0, Kind: "crash", DurationMS: 200},
			}}
		}})
	mustConserve(t, res)
	if res.LostAtAdmit == 0 {
		t.Fatal("dead fleet lost nothing at admission")
	}
	if res.ProbeFails == 0 {
		t.Fatal("probes never failed against a dead fleet")
	}
	for _, b := range res.Backends {
		if b.State != "down" {
			t.Fatalf("backend ended %s, want down", b.State)
		}
	}
}

// TestIntensityControls: scaling a source server's generators up raises
// its generated share; the accessors round-trip.
func TestIntensityControls(t *testing.T) {
	at := sim.Time(0).Add(5 * sim.Millisecond)
	base, _ := runFleet(t, fleetSpec{n: 2, workers: 2, rc: DefaultConfig()})
	boosted, _ := runFleet(t, fleetSpec{n: 2, workers: 2, rc: DefaultConfig(),
		actions: []Action{{At: at, Fn: func(rt *Router) {
			rt.SetIntensity(0, 3.0)
			rt.SetVMIntensity(1, 0, 2.0)
			if got := rt.Intensity(0, 1); got != 3.0 {
				t.Errorf("Intensity(0,1) = %v after SetIntensity(0, 3)", got)
			}
			if got := rt.Intensity(1, 0); got != 2.0 {
				t.Errorf("Intensity(1,0) = %v after SetVMIntensity", got)
			}
			if got := rt.Intensity(9, 9); got != 0 {
				t.Errorf("Intensity(9,9) = %v for unknown generator", got)
			}
		}}}})
	mustConserve(t, boosted)
	if boosted.Generated <= base.Generated {
		t.Fatalf("intensity boost did not raise generation: %d -> %d",
			base.Generated, boosted.Generated)
	}
}

// TestConfigValidate: every field's rejection path names the field.
func TestConfigValidate(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  Config
		frag string
	}{
		{"bad policy", mod(func(c *Config) { c.Policy = Policy(9) }), "routing.policy"},
		{"bad delay", mod(func(c *Config) { c.NetDelay = 0 }), "network_delay_us"},
		{"bad probe", mod(func(c *Config) { c.ProbeInterval = 0 }), "probe_interval_ms"},
		{"bad unhealthy", mod(func(c *Config) { c.UnhealthyAfter = 0 }), "unhealthy_after"},
		{"bad healthy", mod(func(c *Config) { c.HealthyAfter = 0 }), "healthy_after"},
		{"bad eject", mod(func(c *Config) { c.EjectAfter = -1 }), "eject_after"},
		{"bad backoff", mod(func(c *Config) { c.EjectBackoff = 0 }), "eject_backoff_ms"},
		{"bad failovers", mod(func(c *Config) { c.MaxFailovers = -1 }), "max_failovers"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("%s: error %v does not name %q", tc.name, err, tc.frag)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
	for _, name := range []string{"round_robin", "least_outstanding", "weighted"} {
		p, err := ParsePolicy(name)
		if err != nil || p.String() != name {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if got := Policy(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("Policy(9).String() = %q", got)
	}
}

// TestFleetConservationTeeth: a corrupted ledger must fail the oracle.
func TestFleetConservationTeeth(t *testing.T) {
	res, _ := runFleet(t, fleetSpec{n: 2, workers: 1, rc: DefaultConfig()})
	if c := res.Conservation("ok"); !c.OK {
		t.Fatalf("clean run failed conservation: %s", c.Detail)
	}
	tot := res.Totals()
	tot.Generated++
	if c := validate.FleetConservation("perturbed", tot); c.OK {
		t.Fatal("perturbed ledger passed conservation")
	} else if !strings.Contains(c.Detail, "generated") {
		t.Fatalf("violation detail %q does not name the identity", c.Detail)
	}
}
