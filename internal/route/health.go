package route

import (
	"hardharvest/internal/cluster"
	"hardharvest/internal/stats"
)

// Health, ejection, and drain state machines.
//
// Health (probe-driven):        healthy --UnhealthyAfter fails--> unhealthy
//                               unhealthy --HealthyAfter oks--> healthy
// Ejection (request-driven):    admitted --EjectAfter consecutive sheds-->
//                               ejected --EjectBackoff*2^(n-1)--> half-open
//                               (one more shed re-ejects immediately)
// Drain (operator-driven):      serving --drain--> draining --deadline-->
//                               drained --crash recovery--> serving
//
// A backend is dispatch-eligible only when every machine is in its good
// state: healthy, not inside a crash window, not ejected, and not in
// either drain state.

// backendRT is the router's per-server runtime state.
type backendRT struct {
	idx    int
	name   string
	srv    *cluster.Server
	member int
	port   *port
	weight float64
	wrrCur float64

	// active holds the ids of current (non-superseded, unresolved)
	// attempts dispatched to this backend, in dispatch order — the
	// deterministic failover order when the backend goes away.
	active []uint64

	healthy  bool
	down     bool
	ejected  bool
	draining bool
	drained  bool

	okStreak   int
	failStreak int
	consecFail int
	ejectCount int

	// Counters surfaced in Result.
	dispatches      uint64
	dones           uint64
	sheds           uint64
	zombieDones     uint64
	zombieSheds     uint64
	failoversOut    uint64
	lost            uint64
	probes          uint64
	probeFails      uint64
	unhealthySpells uint64
	ejections       uint64
	drains          uint64
	crashes         uint64

	edgeLat *stats.Sketch
}

// eligible reports whether the router may dispatch new work to b.
func (b *backendRT) eligible() bool {
	return b.healthy && !b.down && !b.ejected && !b.draining && !b.drained
}

// state renders the composite state for summaries and /api/state.
func (b *backendRT) state() string {
	switch {
	case b.down:
		return "down"
	case b.ejected:
		return "ejected"
	case b.draining:
		return "draining"
	case b.drained:
		return "drained"
	case !b.healthy:
		return "unhealthy"
	default:
		return "healthy"
	}
}

// Port event opcodes: the port is the router's agent on each server's
// member, receiving router->server messages on the server's engine.
const (
	pOpDispatch int32 = iota // a: *dispatchMsg — admit one attempt
	pOpProbe                 // a: *probeMsg — health check, reply with ok
)

// port runs on the backend's ShardGroup member and bridges router messages
// into the server (and probe answers back out).
type port struct {
	rt *Router
	b  *backendRT
}

// OnEvent handles router->server messages (sim.Callback, server engine).
func (p *port) OnEvent(op int32, a, b any) {
	switch op {
	case pOpDispatch:
		m := a.(*dispatchMsg)
		p.b.srv.AdmitRemote(m.vm, m.attempt)
	case pOpProbe:
		m := a.(*probeMsg)
		p.rt.group.Send(p.b.member, p.rt.self, p.rt.cfg.NetDelay, p.rt, rOpProbeReply,
			&probeReply{backend: m.backend, ok: !p.b.srv.Crashed()}, nil)
	default:
		panic("route: unknown port op")
	}
}

// probeTick sends one health probe to every backend, in index order, and
// schedules the next round.
func (rt *Router) probeTick() {
	for _, b := range rt.backends {
		b.probes++
		rt.probes++
		rt.group.Send(rt.self, b.member, rt.cfg.NetDelay, b.port, pOpProbe,
			&probeMsg{backend: b.idx}, nil)
	}
	if rt.now().Add(rt.cfg.ProbeInterval) <= rt.horizon {
		rt.eng.ScheduleCall(rt.cfg.ProbeInterval, rt, rOpProbeTick, nil, nil)
	}
}

func (rt *Router) onProbeReply(m *probeReply) {
	b := rt.backends[m.backend]
	if m.ok {
		b.okStreak++
		b.failStreak = 0
		if !b.healthy && b.okStreak >= rt.cfg.HealthyAfter {
			b.healthy = true
		}
		return
	}
	b.probeFails++
	rt.probeFails++
	b.failStreak++
	b.okStreak = 0
	if b.healthy && b.failStreak >= rt.cfg.UnhealthyAfter {
		b.healthy = false
		b.unhealthySpells++
		rt.failoverActive(b)
	}
}

// onCrash applies a server's crash/recovery edge. Down strands the
// backend's attempts immediately (faster than probes can notice); recovery
// clears the crash and drain flags but health returns only after
// HealthyAfter clean probes.
func (rt *Router) onCrash(m *crashMsg) {
	b := rt.backends[m.backend]
	if m.down {
		b.down = true
		b.healthy = false
		b.okStreak = 0
		b.crashes++
		rt.failoverActive(b)
		return
	}
	b.down = false
	b.drained = false
}

// noteFailure feeds the outlier circuit breaker: EjectAfter consecutive
// shed replies (no intervening completion) eject the backend.
func (rt *Router) noteFailure(b *backendRT) {
	if rt.cfg.EjectAfter <= 0 || b.ejected {
		return
	}
	b.consecFail++
	if b.consecFail >= rt.cfg.EjectAfter {
		rt.eject(b)
	}
}

func (rt *Router) eject(b *backendRT) {
	b.ejected = true
	b.ejections++
	rt.ejections++
	b.ejectCount++
	rt.failoverActive(b)
	shift := b.ejectCount - 1
	if shift > 10 {
		shift = 10
	}
	rt.eng.ScheduleCall(rt.cfg.EjectBackoff<<shift, rt, rOpReadmit, b, nil)
}

// readmit re-admits an ejected backend half-open: its failure streak sits
// one short of the threshold, so a single further shed re-ejects it (with
// a doubled backoff) while a completion fully clears the breaker.
func (rt *Router) readmit(b *backendRT) {
	b.ejected = false
	rt.readmits++
	b.consecFail = rt.cfg.EjectAfter - 1
}
