package route

import "fmt"

// Policy selects how the router spreads new dispatches over the eligible
// backends. All policies are RNG-free: the choice is a pure function of
// dispatch history, so routed runs stay byte-identical at any worker count.
type Policy int

const (
	// RoundRobin cycles a global counter over the eligible set.
	RoundRobin Policy = iota
	// LeastOutstanding picks the eligible backend with the fewest live
	// attempts, lowest index on ties.
	LeastOutstanding
	// Weighted is smooth weighted round-robin over Backend.Weight (weight
	// by 1/exec-factor so faster hardware generations absorb more load).
	Weighted
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round_robin"
	case LeastOutstanding:
		return "least_outstanding"
	case Weighted:
		return "weighted"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a scenario policy name to its Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "round_robin":
		return RoundRobin, nil
	case "least_outstanding":
		return LeastOutstanding, nil
	case "weighted":
		return Weighted, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (round_robin, least_outstanding, weighted)", s)
	}
}

// pick returns the policy's choice among the currently eligible backends,
// or nil when none is eligible.
func (rt *Router) pick() *backendRT {
	elig := rt.eligible[:0]
	for i, b := range rt.backends {
		if b.eligible() {
			elig = append(elig, i)
		}
	}
	rt.eligible = elig
	if len(elig) == 0 {
		return nil
	}
	switch rt.cfg.Policy {
	case LeastOutstanding:
		best := rt.backends[elig[0]]
		for _, i := range elig[1:] {
			if b := rt.backends[i]; len(b.active) < len(best.active) {
				best = b
			}
		}
		return best
	case Weighted:
		var total float64
		for _, i := range elig {
			total += rt.backends[i].weight
		}
		var best *backendRT
		for _, i := range elig {
			b := rt.backends[i]
			b.wrrCur += b.weight
			if best == nil || b.wrrCur > best.wrrCur {
				best = b
			}
		}
		best.wrrCur -= total
		return best
	default: // RoundRobin
		b := rt.backends[elig[int(rt.rr%uint64(len(elig)))]]
		rt.rr++
		return b
	}
}
