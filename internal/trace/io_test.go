package trace

import (
	"bytes"
	"strings"
	"testing"

	"hardharvest/internal/stats"
)

func TestInstancesCSVRoundTrip(t *testing.T) {
	insts := GenerateInstances(stats.NewRNG(1), 200)
	var buf bytes.Buffer
	if err := WriteInstancesCSV(&buf, insts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstancesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("round trip lost rows: %d vs %d", len(got), len(insts))
	}
	for i := range got {
		if d := got[i].AvgUtil - insts[i].AvgUtil; d > 1e-5 || d < -1e-5 {
			t.Fatalf("row %d avg drifted: %v vs %v", i, got[i].AvgUtil, insts[i].AvgUtil)
		}
	}
}

func TestReadInstancesCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "x,y\n0.1,0.2\n",
		"bad number":   "avg_util,max_util\nfoo,0.2\n",
		"out of range": "avg_util,max_util\n0.9,0.2\n",
	}
	for name, in := range cases {
		if _, err := ReadInstancesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	inst := Instance{AvgUtil: 0.2, MaxUtil: 0.8}
	series := inst.Series(stats.NewRNG(2), DefaultSeriesParams())
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, series, 30); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "time_s,utilization\n0,") {
		t.Fatalf("unexpected CSV start: %q", buf.String()[:30])
	}
	got, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(series) {
		t.Fatalf("lost steps: %d vs %d", len(got), len(series))
	}
	for i := range got {
		if d := got[i] - series[i]; d > 1e-5 || d < -1e-5 {
			t.Fatalf("step %d drifted", i)
		}
	}
	if _, err := ReadSeriesCSV(strings.NewReader("nope\n")); err == nil {
		t.Fatal("bad series header should error")
	}
}
