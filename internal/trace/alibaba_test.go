package trace

import (
	"math"
	"testing"

	"hardharvest/internal/stats"
)

func TestCalibrationQuantiles(t *testing.T) {
	rng := stats.NewRNG(42)
	insts := GenerateInstances(rng, 20000)
	// Paper: 50% of instances average below 16.1% utilization.
	below := FractionBelowAvg(insts, 0.161)
	if math.Abs(below-0.50) > 0.03 {
		t.Fatalf("P(avg < 0.161) = %.3f, want ~0.50", below)
	}
	// Paper: 90% of instances peak below 40.7% utilization.
	belowMax := FractionBelowMax(insts, 0.407)
	if math.Abs(belowMax-0.90) > 0.03 {
		t.Fatalf("P(max < 0.407) = %.3f, want ~0.90", belowMax)
	}
}

func TestInstanceInvariants(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, in := range GenerateInstances(rng, 5000) {
		if in.AvgUtil <= 0 || in.AvgUtil > 1 {
			t.Fatalf("avg out of range: %v", in.AvgUtil)
		}
		if in.MaxUtil < in.AvgUtil {
			t.Fatalf("max %v below avg %v", in.MaxUtil, in.AvgUtil)
		}
		if in.MaxUtil > 1 {
			t.Fatalf("max out of range: %v", in.MaxUtil)
		}
	}
}

func TestSeriesMatchesSummary(t *testing.T) {
	rng := stats.NewRNG(9)
	inst := Instance{AvgUtil: 0.15, MaxUtil: 0.6}
	p := DefaultSeriesParams()
	p.Steps = 4000 // long series for tight averages
	series := inst.Series(rng, p)
	avg, max := SummarizeSeries(series)
	if math.Abs(avg-inst.AvgUtil) > 0.05 {
		t.Fatalf("series avg = %.3f, want ~%.2f", avg, inst.AvgUtil)
	}
	if math.Abs(max-inst.MaxUtil) > 0.01 {
		t.Fatalf("series max = %.3f, want ~%.2f", max, inst.MaxUtil)
	}
	for _, v := range series {
		if v < 0 || v > inst.MaxUtil+1e-9 {
			t.Fatalf("series value out of range: %v", v)
		}
	}
}

func TestSeriesHasBursts(t *testing.T) {
	rng := stats.NewRNG(11)
	inst := Instance{AvgUtil: 0.15, MaxUtil: 0.7}
	p := DefaultSeriesParams()
	p.Steps = 1000
	series := inst.Series(rng, p)
	bursts := 0
	for _, v := range series {
		if v == inst.MaxUtil {
			bursts++
		}
	}
	occ := float64(bursts) / float64(len(series))
	want := p.BurstEnter / (p.BurstEnter + p.BurstExit)
	if math.Abs(occ-want) > 0.05 {
		t.Fatalf("burst occupancy = %.3f, want ~%.3f", occ, want)
	}
}

func TestSeriesDegenerateInputs(t *testing.T) {
	rng := stats.NewRNG(12)
	// Max close to avg (base solve would go negative) must stay sane.
	inst := Instance{AvgUtil: 0.02, MaxUtil: 1.0}
	series := inst.Series(rng, DefaultSeriesParams())
	for _, v := range series {
		if v < 0 || v > 1 {
			t.Fatalf("value out of range: %v", v)
		}
	}
	if avg, _ := SummarizeSeries(nil); avg != 0 {
		t.Fatal("empty series summary should be zero")
	}
}

func TestCDFShapes(t *testing.T) {
	rng := stats.NewRNG(13)
	insts := GenerateInstances(rng, 2000)
	avgCDF := AvgCDF(insts, 50)
	maxCDF := MaxCDF(insts, 50)
	if len(avgCDF) != 50 || len(maxCDF) != 50 {
		t.Fatalf("CDF lengths %d/%d", len(avgCDF), len(maxCDF))
	}
	// The max-utilization curve is stochastically to the right of the
	// avg-utilization curve: at every fraction its value is >=.
	for i := range avgCDF {
		if maxCDF[i].Value < avgCDF[i].Value {
			t.Fatalf("max CDF left of avg CDF at %v", avgCDF[i].Fraction)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := GenerateInstances(stats.NewRNG(5), 100)
	b := GenerateInstances(stats.NewRNG(5), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different instances")
		}
	}
}
