package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV import/export so generated traces can be saved, inspected, and
// replayed across runs (and exchanged with external plotting tools).

// WriteInstancesCSV writes instances as "avg_util,max_util" rows with a
// header.
func WriteInstancesCSV(w io.Writer, insts []Instance) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"avg_util", "max_util"}); err != nil {
		return err
	}
	for _, in := range insts {
		rec := []string{
			strconv.FormatFloat(in.AvgUtil, 'f', 6, 64),
			strconv.FormatFloat(in.MaxUtil, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadInstancesCSV parses instances written by WriteInstancesCSV.
func ReadInstancesCSV(r io.Reader) ([]Instance, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if len(rows[0]) != 2 || rows[0][0] != "avg_util" {
		return nil, fmt.Errorf("trace: unexpected header %v", rows[0])
	}
	out := make([]Instance, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i+1, len(row))
		}
		avg, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d avg: %w", i+1, err)
		}
		max, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d max: %w", i+1, err)
		}
		if avg < 0 || avg > 1 || max < avg || max > 1 {
			return nil, fmt.Errorf("trace: row %d out of range (avg=%v max=%v)", i+1, avg, max)
		}
		out = append(out, Instance{AvgUtil: avg, MaxUtil: max})
	}
	return out, nil
}

// WriteSeriesCSV writes a utilization series as "step,utilization" rows.
func WriteSeriesCSV(w io.Writer, series []float64, stepSeconds int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "utilization"}); err != nil {
		return err
	}
	for i, u := range series {
		rec := []string{
			strconv.Itoa(i * stepSeconds),
			strconv.FormatFloat(u, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeriesCSV parses a series written by WriteSeriesCSV.
func ReadSeriesCSV(r io.Reader) ([]float64, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 || len(rows[0]) != 2 || rows[0][1] != "utilization" {
		return nil, fmt.Errorf("trace: unexpected series header")
	}
	out := make([]float64, 0, len(rows)-1)
	for i, row := range rows[1:] {
		u, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+1, err)
		}
		out = append(out, u)
	}
	return out, nil
}
