// Package trace synthesizes Alibaba-like microservice utilization traces.
// The paper's motivation (Figures 2-3) relies on two published properties of
// the production traces: half of all instances average below 16.1% core
// utilization, and 90% of instances peak below 40.7%; utilization over time
// is low with occasional bursts at 30-second granularity. The generator is
// calibrated to those quantiles; a test asserts the calibration.
package trace

import (
	"math"

	"hardharvest/internal/stats"
)

// Calibration constants. Average utilization is log-normal with its median
// pinned at the paper's 16.1%; the peak is the average scaled by a
// log-normal burst factor (clamped >= 1) whose parameters place the P90 of
// the peak at the paper's 40.7%.
const (
	medianAvgUtil = 0.161
	sigmaAvg      = 0.40
	burstMedian   = 1.332
	sigmaBurst    = 0.30
)

// Instance is one microservice instance's utilization summary.
type Instance struct {
	// AvgUtil is the instance's average core utilization in [0, 1].
	AvgUtil float64
	// MaxUtil is the instance's maximum observed utilization in [0, 1].
	MaxUtil float64
}

// GenerateInstances draws n instances from the calibrated distribution.
func GenerateInstances(rng *stats.RNG, n int) []Instance {
	out := make([]Instance, n)
	for i := range out {
		out[i] = generateInstance(rng)
	}
	return out
}

func generateInstance(rng *stats.RNG) Instance {
	avg := rng.LogNormal(math.Log(medianAvgUtil), sigmaAvg)
	if avg > 0.95 {
		avg = 0.95
	}
	if avg < 0.005 {
		avg = 0.005
	}
	burst := rng.LogNormal(math.Log(burstMedian), sigmaBurst)
	if burst < 1 {
		burst = 1
	}
	max := avg * burst
	if max > 1 {
		max = 1
	}
	return Instance{AvgUtil: avg, MaxUtil: max}
}

// SeriesParams shape a utilization time series (Figure 3).
type SeriesParams struct {
	// Steps is the number of samples (the traces use 30 s granularity;
	// the paper's Figure 3 spans ~500 s, i.e. ~17 steps, but longer series
	// are useful for load generation).
	Steps int
	// BurstEnter is the per-step probability of entering a burst.
	BurstEnter float64
	// BurstExit is the per-step probability of leaving a burst.
	BurstExit float64
	// Jitter is the relative AR(1) noise on the base utilization.
	Jitter float64
}

// DefaultSeriesParams returns burst dynamics with ~9% stationary burst
// occupancy and visible spikes, matching the bursty pattern of Figure 3.
func DefaultSeriesParams() SeriesParams {
	return SeriesParams{
		Steps:      17, // ~500 s at 30 s per step
		BurstEnter: 0.06,
		BurstExit:  0.60,
		Jitter:     0.15,
	}
}

// burstOccupancy is the stationary fraction of steps spent bursting.
func (p SeriesParams) burstOccupancy() float64 {
	return p.BurstEnter / (p.BurstEnter + p.BurstExit)
}

// Series synthesizes a utilization time series for the instance whose
// long-run average and peak match the instance summary: the base level is
// solved so that base*(1-f) + peak*f = avg for burst occupancy f.
func (inst Instance) Series(rng *stats.RNG, p SeriesParams) []float64 {
	f := p.burstOccupancy()
	base := (inst.AvgUtil - f*inst.MaxUtil) / (1 - f)
	if base < 0.005 {
		base = 0.005
	}
	out := make([]float64, p.Steps)
	bursting := false
	level := base
	for i := range out {
		if bursting {
			if rng.Float64() < p.BurstExit {
				bursting = false
			}
		} else if rng.Float64() < p.BurstEnter {
			bursting = true
		}
		if bursting {
			out[i] = inst.MaxUtil
			continue
		}
		// AR(1) jitter around the base level.
		level = 0.7*level + 0.3*base*(1+p.Jitter*(2*rng.Float64()-1))
		u := level
		if u < 0 {
			u = 0
		}
		if u > inst.MaxUtil {
			u = inst.MaxUtil
		}
		out[i] = u
	}
	return out
}

// SummarizeSeries reports the average and maximum of a series.
func SummarizeSeries(series []float64) (avg, max float64) {
	if len(series) == 0 {
		return 0, 0
	}
	for _, v := range series {
		avg += v
		if v > max {
			max = v
		}
	}
	return avg / float64(len(series)), max
}

// AvgCDF and MaxCDF build the Figure 2 curves from a set of instances.
func AvgCDF(insts []Instance, points int) []stats.CDFPoint {
	r := stats.NewRecorder()
	for _, in := range insts {
		r.Add(in.AvgUtil)
	}
	return r.CDF(points)
}

// MaxCDF builds the maximum-utilization CDF of Figure 2.
func MaxCDF(insts []Instance, points int) []stats.CDFPoint {
	r := stats.NewRecorder()
	for _, in := range insts {
		r.Add(in.MaxUtil)
	}
	return r.CDF(points)
}

// FractionBelowAvg reports the fraction of instances with AvgUtil < u.
func FractionBelowAvg(insts []Instance, u float64) float64 {
	n := 0
	for _, in := range insts {
		if in.AvgUtil < u {
			n++
		}
	}
	return float64(n) / float64(len(insts))
}

// FractionBelowMax reports the fraction of instances with MaxUtil < u.
func FractionBelowMax(insts []Instance, u float64) float64 {
	n := 0
	for _, in := range insts {
		if in.MaxUtil < u {
			n++
		}
	}
	return float64(n) / float64(len(insts))
}
