package stats

import (
	"fmt"
	"math"
)

// sketchSubBits is the log-linear precision of Sketch: every power of two is
// split into 2^sketchSubBits sub-buckets, bounding the relative quantile
// error at 2^-sketchSubBits (~1.6%).
const sketchSubBits = 6

// SketchRelativeError is the worst-case relative error of an interior
// Sketch quantile: a bucket's upper edge overstates a value inside it by at
// most this fraction.
const SketchRelativeError = 1.0 / (1 << sketchSubBits)

// Sketch is a bounded-memory mergeable quantile sketch over non-negative
// float64 samples: an HDR-style log-linear histogram whose buckets come
// straight from the IEEE-754 bit pattern. For positive floats the bit
// pattern is monotone, so `bits >> (52-subBits)` keeps the exponent and the
// top sub-bucket bits of the mantissa — a monotone O(1) bucketing with
// bounded relative width and no branches or logarithms.
//
// Memory is proportional to the spanned value range (2^sketchSubBits
// buckets per power of two, allocated lazily as a dense window over the
// populated range), not to the sample count: a fleet of thousands of
// servers records forever in flat memory, where the exact Recorder grows
// per sample. Count, sum, min, and max are tracked exactly outside the
// buckets, so Mean and the q=0 / q=1 endpoints carry no quantization error.
//
// Merging is bucket-wise counter addition — exactly associative and
// commutative — which is what lets per-shard sketches fold into fleet-level
// aggregates in any grouping without changing any quantile.
type Sketch struct {
	counts []uint64 // dense window; counts[i] covers global bucket base+i
	base   int      // global index of counts[0]
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{min: math.Inf(1), max: math.Inf(-1)}
}

// sketchBucket maps a sample to its global bucket index. Negative and NaN
// samples clamp to bucket zero (latencies are non-negative; the clamp
// mirrors the exact recorders' treatment of degenerate input).
func sketchBucket(v float64) int {
	if !(v > 0) {
		return 0
	}
	return int(math.Float64bits(v) >> (52 - sketchSubBits))
}

// sketchUpper reports the largest float64 mapping into global bucket i (the
// conservative quantile estimate).
func sketchUpper(i int) float64 {
	if i == 0 {
		return 0
	}
	return math.Float64frombits(uint64(i+1)<<(52-sketchSubBits) - 1)
}

// Add records one sample in O(1); the bucket window grows only when a
// sample lands outside the populated value range.
func (s *Sketch) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := sketchBucket(v)
	s.bump(i, 1)
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// bump adds n to global bucket i, growing the dense window to reach it.
func (s *Sketch) bump(i int, n uint64) {
	if len(s.counts) == 0 {
		s.counts = append(s.counts, 0)
		s.base = i
	}
	for i < s.base {
		// Extend toward zero: shift the window right.
		need := s.base - i
		s.counts = append(s.counts, make([]uint64, need)...)
		copy(s.counts[need:], s.counts[:len(s.counts)-need])
		for k := 0; k < need; k++ {
			s.counts[k] = 0
		}
		s.base = i
	}
	for i >= s.base+len(s.counts) {
		need := i - (s.base + len(s.counts)) + 1
		s.counts = append(s.counts, make([]uint64, need)...)
	}
	s.counts[i-s.base] += n
}

// Count reports recorded samples.
func (s *Sketch) Count() int { return int(s.count) }

// Sum reports the exact sum of recorded samples.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean reports the exact arithmetic mean, or 0 with no samples.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min reports the smallest sample, or 0 with no samples.
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest sample, or 0 with no samples.
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Quantile reports the q-quantile as the upper edge of the bucket holding
// the target rank, clamped to the recorded extremes. Edge semantics match
// the exact recorders and obs.LatencyHist: q <= 0 reports the exact
// minimum, q >= 1 or NaN reports the exact maximum, and an empty sketch
// reports 0 for every q. Interior quantiles overstate the true value by at
// most SketchRelativeError.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 || math.IsNaN(q) {
		return s.max
	}
	target := uint64(q * float64(s.count))
	if target >= s.count {
		return s.max
	}
	var seen uint64
	for i, c := range s.counts {
		seen += c
		if seen > target {
			u := sketchUpper(s.base + i)
			if u > s.max {
				u = s.max
			}
			if u < s.min {
				u = s.min
			}
			return u
		}
	}
	return s.max
}

// P50 reports the median estimate.
func (s *Sketch) P50() float64 { return s.Quantile(0.50) }

// P99 reports the 99th-percentile estimate.
func (s *Sketch) P99() float64 { return s.Quantile(0.99) }

// Merge folds other into s: bucket counts add, extremes and sums combine.
// Bucket-wise addition is exactly associative and commutative, so any
// merge tree over the same sketches yields identical bucket contents,
// counts, and quantiles (the floating-point sum — and therefore Mean — is
// reproducible for a fixed merge order).
func (s *Sketch) Merge(other *Sketch) {
	for i, c := range other.counts {
		if c != 0 {
			s.bump(other.base+i, c)
		}
	}
	s.count += other.count
	s.sum += other.sum
	if other.count > 0 {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
}

// Reset discards all samples but keeps the bucket window's capacity.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.counts = s.counts[:0]
	s.count = 0
	s.sum = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// Buckets reports the populated window size, for memory accounting in
// tests: it stays flat as the sample count grows.
func (s *Sketch) Buckets() int { return len(s.counts) }

// String renders the standard compact summary.
func (s *Sketch) String() string {
	return fmt.Sprintf("n=%d mean=%g p50=%g p99=%g max=%g",
		s.count, s.Mean(), s.P50(), s.P99(), s.Max())
}
