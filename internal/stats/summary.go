package stats

import (
	"fmt"
	"math"
	"sort"
)

// Recorder collects samples and answers exact quantile queries. The paper's
// headline metric is P99 tail latency over ~100K invocations, which fits
// comfortably in memory, so we keep exact samples rather than a sketch.
type Recorder struct {
	samples []float64
	sorted  bool
	sum     float64
	max     float64
	min     float64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one sample.
func (r *Recorder) Add(v float64) {
	r.samples = append(r.samples, v)
	r.sorted = false
	r.sum += v
	if v > r.max {
		r.max = v
	}
	if v < r.min {
		r.min = v
	}
}

// Count reports the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean reports the arithmetic mean, or 0 with no samples.
func (r *Recorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / float64(len(r.samples))
}

// Max reports the largest sample, or 0 with no samples.
func (r *Recorder) Max() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	return r.max
}

// Min reports the smallest sample, or 0 with no samples.
func (r *Recorder) Min() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	return r.min
}

func (r *Recorder) ensureSorted() {
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
}

// Sort pre-sorts the sample buffer so that later quantile queries are pure
// reads. Quantile sorts lazily on first use, which mutates the recorder;
// producers that hand a recorder to concurrent readers (the parallel
// experiment scheduler reads shared ServerResults from several goroutines)
// call Sort once before publishing. Adding more samples re-arms the lazy
// sort as usual.
func (r *Recorder) Sort() { r.ensureSorted() }

// Quantile reports the q-quantile (0 <= q <= 1) using nearest-rank with
// linear interpolation. Returns 0 with no samples.
func (r *Recorder) Quantile(q float64) float64 {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		r.ensureSorted()
		return r.samples[0]
	}
	if q >= 1 {
		r.ensureSorted()
		return r.samples[n-1]
	}
	r.ensureSorted()
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return r.samples[lo]
	}
	frac := pos - float64(lo)
	return r.samples[lo]*(1-frac) + r.samples[hi]*frac
}

// P50 reports the median.
func (r *Recorder) P50() float64 { return r.Quantile(0.50) }

// P99 reports the 99th percentile.
func (r *Recorder) P99() float64 { return r.Quantile(0.99) }

// P999 reports the 99.9th percentile.
func (r *Recorder) P999() float64 { return r.Quantile(0.999) }

// Merge folds all of other's samples into r.
func (r *Recorder) Merge(other *Recorder) {
	for _, v := range other.samples {
		r.Add(v)
	}
}

// Each visits every recorded sample in insertion order (or sorted order if
// the recorder has been sorted). It is how exact recorders fold into
// bounded sketches without exposing the sample buffer.
func (r *Recorder) Each(fn func(v float64)) {
	for _, v := range r.samples {
		fn(v)
	}
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.sorted = false
	r.sum = 0
	r.min = math.Inf(1)
	r.max = math.Inf(-1)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the empirical CDF evaluated at k evenly spaced fractions
// (1/k, 2/k, ..., 1).
func (r *Recorder) CDF(k int) []CDFPoint {
	if k <= 0 || len(r.samples) == 0 {
		return nil
	}
	r.ensureSorted()
	pts := make([]CDFPoint, 0, k)
	for i := 1; i <= k; i++ {
		f := float64(i) / float64(k)
		pts = append(pts, CDFPoint{Value: r.Quantile(f), Fraction: f})
	}
	return pts
}

// FractionBelow reports the fraction of samples strictly below v.
func (r *Recorder) FractionBelow(v float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	idx := sort.SearchFloat64s(r.samples, v)
	return float64(idx) / float64(len(r.samples))
}

// Histogram is a fixed-width bucket histogram over [lo, hi); samples outside
// the range land in saturating edge buckets.
type Histogram struct {
	lo, hi  float64
	buckets []uint64
	count   uint64
}

// NewHistogram builds a histogram with n buckets covering [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	n := len(h.buckets)
	idx := int(float64(n) * (v - h.lo) / (h.hi - h.lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.buckets[idx]++
	h.count++
}

// Count reports total samples recorded.
func (h *Histogram) Count() uint64 { return h.count }

// Bucket reports the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// NumBuckets reports the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// BucketBounds reports the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.buckets))
	return h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// String renders a compact textual histogram, for debugging and reports.
func (h *Histogram) String() string {
	out := ""
	for i := range h.buckets {
		lo, hi := h.BucketBounds(i)
		out += fmt.Sprintf("[%8.3g,%8.3g) %d\n", lo, hi, h.buckets[i])
	}
	return out
}

// MeanStddev computes the mean and (population) standard deviation of vs.
func MeanStddev(vs []float64) (mean, stddev float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	for _, v := range vs {
		mean += v
	}
	mean /= float64(len(vs))
	for _, v := range vs {
		d := v - mean
		stddev += d * d
	}
	stddev = math.Sqrt(stddev / float64(len(vs)))
	return mean, stddev
}

// GeoMean computes the geometric mean of strictly positive values; zero or
// negative values are skipped.
func GeoMean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// KSStatistic computes the two-sided Kolmogorov-Smirnov statistic between
// the recorder's empirical distribution and a reference CDF. Used by tests
// validating generated distributions against their analytic forms.
func (r *Recorder) KSStatistic(cdf func(float64) float64) float64 {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	r.ensureSorted()
	maxDev := 0.0
	for i, v := range r.samples {
		f := cdf(v)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if d := f - lo; d > maxDev {
			maxDev = d
		}
		if d := hi - f; d > maxDev {
			maxDev = d
		}
	}
	return maxDev
}
