package stats

import (
	"math"
	"testing"
)

// sketchDists are the error-bound fixtures: shapes chosen to stress the
// log-linear buckets differently (a single bucket, two widely separated
// modes, a smooth body, and a heavy tail spanning many powers of two).
var sketchDists = []struct {
	name string
	gen  func(r *RNG) float64
}{
	{"constant", func(r *RNG) float64 { return 1234.5 }},
	{"bimodal", func(r *RNG) float64 {
		if r.Bool(0.8) {
			return 100 + r.Float64()
		}
		return 90_000 + 1000*r.Float64()
	}},
	{"lognormal", func(r *RNG) float64 { return r.LogNormal(8, 1.5) }},
	{"heavy-tail", func(r *RNG) float64 { return r.Pareto(50, 1.1) }},
}

// TestSketchQuantileErrorBound is the accuracy contract: against an exact
// recorder over the same samples, every interior sketch quantile must land
// within the documented relative error (plus a small slack for the exact
// recorder's rank interpolation, which the bucket-edge estimate does not
// model).
func TestSketchQuantileErrorBound(t *testing.T) {
	const n = 200_000
	bound := 2*SketchRelativeError + 1e-9 // one bucket width each way
	for _, d := range sketchDists {
		r := NewRNG(42)
		sk := NewSketch()
		ex := NewRecorder()
		for i := 0; i < n; i++ {
			v := d.gen(r)
			sk.Add(v)
			ex.Add(v)
		}
		for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.90, 0.99, 0.999} {
			got, want := sk.Quantile(q), ex.Quantile(q)
			if want <= 0 {
				t.Fatalf("%s: degenerate exact quantile %g", d.name, want)
			}
			if rel := math.Abs(got-want) / want; rel > bound {
				t.Errorf("%s q=%g: sketch %g vs exact %g (rel err %.4f > %.4f)",
					d.name, q, got, want, rel, bound)
			}
		}
		if sk.Count() != ex.Count() {
			t.Errorf("%s: counts diverge: %d vs %d", d.name, sk.Count(), ex.Count())
		}
		if math.Abs(sk.Mean()-ex.Mean()) > 1e-9*ex.Mean() {
			t.Errorf("%s: mean diverges: %g vs %g", d.name, sk.Mean(), ex.Mean())
		}
		if sk.Min() != ex.Min() || sk.Max() != ex.Max() {
			t.Errorf("%s: extremes diverge: [%g,%g] vs [%g,%g]",
				d.name, sk.Min(), sk.Max(), ex.Min(), ex.Max())
		}
	}
}

// TestSketchEdgeSemantics pins the PR 6 quantile edge contract shared with
// the exact recorders and obs.LatencyHist: empty reports 0 everywhere,
// q <= 0 is the exact minimum, q >= 1 or NaN is the exact maximum, and
// degenerate samples clamp to 0.
func TestSketchEdgeSemantics(t *testing.T) {
	s := NewSketch()
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %g, want 0", q, got)
		}
	}
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("empty aggregates nonzero: %s", s)
	}

	s.Add(700)
	s.Add(300)
	s.Add(500)
	if got := s.Quantile(0); got != 300 {
		t.Errorf("Quantile(0) = %g, want exact min 300", got)
	}
	if got := s.Quantile(-0.5); got != 300 {
		t.Errorf("Quantile(-0.5) = %g, want exact min 300", got)
	}
	if got := s.Quantile(1); got != 700 {
		t.Errorf("Quantile(1) = %g, want exact max 700", got)
	}
	if got := s.Quantile(1.5); got != 700 {
		t.Errorf("Quantile(1.5) = %g, want exact max 700", got)
	}
	if got := s.Quantile(math.NaN()); got != 700 {
		t.Errorf("Quantile(NaN) = %g, want exact max 700", got)
	}

	// Degenerate input clamps to 0, mirroring the latency recorders.
	d := NewSketch()
	d.Add(-5)
	d.Add(math.NaN())
	if d.Count() != 2 || d.Min() != 0 || d.Max() != 0 || d.Quantile(0.5) != 0 {
		t.Errorf("degenerate samples not clamped: %s", d)
	}
}

// TestSketchMergeAssociative checks that any merge grouping yields identical
// sketches: same buckets, counts, extremes, and therefore identical
// quantiles (sums compare exactly here because bucket order fixes the
// floating-point fold order).
func TestSketchMergeAssociative(t *testing.T) {
	r := NewRNG(7)
	parts := make([]*Sketch, 3)
	for i := range parts {
		parts[i] = NewSketch()
		for j := 0; j < 10_000; j++ {
			parts[i].Add(r.Pareto(10, 1.3))
		}
	}
	// (A + B) + C
	left := NewSketch()
	left.Merge(parts[0])
	left.Merge(parts[1])
	left.Merge(parts[2])
	// A + (B + C)
	bc := NewSketch()
	bc.Merge(parts[1])
	bc.Merge(parts[2])
	right := NewSketch()
	right.Merge(parts[0])
	right.Merge(bc)

	if left.Count() != right.Count() || left.Min() != right.Min() || left.Max() != right.Max() {
		t.Fatalf("merge groupings diverge: %s vs %s", left, right)
	}
	if math.Abs(left.Sum()-right.Sum()) > 1e-6 {
		t.Fatalf("merge sums diverge: %g vs %g", left.Sum(), right.Sum())
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		if a, b := left.Quantile(q), right.Quantile(q); a != b {
			t.Fatalf("q=%g: %g vs %g", q, a, b)
		}
	}
	// Merging an empty sketch is the identity.
	before := left.Quantile(0.99)
	left.Merge(NewSketch())
	if left.Quantile(0.99) != before || left.Count() != right.Count() {
		t.Fatal("merging an empty sketch changed the sketch")
	}
}

// TestSketchFlatMemory: the bucket window is a function of the spanned value
// range, not the sample count — the fleet-scale property the scenario
// runner depends on.
func TestSketchFlatMemory(t *testing.T) {
	r := NewRNG(3)
	s := NewSketch()
	for i := 0; i < 10_000; i++ {
		s.Add(r.LogNormal(10, 1))
	}
	buckets := s.Buckets()
	for i := 0; i < 100_000; i++ {
		s.Add(r.LogNormal(10, 1))
	}
	if s.Buckets() > buckets+2*64 { // at most ~2 more powers of two
		t.Fatalf("bucket window grew with sample count: %d -> %d", buckets, s.Buckets())
	}
	if s.Count() != 110_000 {
		t.Fatalf("count = %d", s.Count())
	}
}

// TestSketchWindowGrowth drives the dense window in both directions and
// across Reset, pinning the base-offset bookkeeping.
func TestSketchWindowGrowth(t *testing.T) {
	s := NewSketch()
	s.Add(1 << 20) // large first: window opens high
	s.Add(1e-3)    // then extend toward zero
	s.Add(1 << 30) // then extend upward
	if s.Count() != 3 || s.Min() != 1e-3 || s.Max() != float64(1<<30) {
		t.Fatalf("window growth lost samples: %s", s)
	}
	if got := s.Quantile(0.5); math.Abs(got-float64(1<<20))/float64(1<<20) > SketchRelativeError {
		t.Fatalf("median after growth = %g, want ~%d", got, 1<<20)
	}

	s.Reset()
	if s.Count() != 0 || s.Buckets() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("Reset left state: %s", s)
	}
	s.Add(42)
	if s.Quantile(1) != 42 || s.Count() != 1 {
		t.Fatalf("sketch unusable after Reset: %s", s)
	}
}

// TestSketchBucketMonotone: the bit-pattern bucketing must be monotone, the
// property the quantile walk relies on.
func TestSketchBucketMonotone(t *testing.T) {
	r := NewRNG(11)
	prevV, prevB := 0.0, sketchBucket(0)
	for i := 0; i < 100_000; i++ {
		v := prevV + r.Float64()*math.Ldexp(1, i%64-32)
		b := sketchBucket(v)
		if b < prevB {
			t.Fatalf("bucket not monotone: %g->%d after %g->%d", v, b, prevV, prevB)
		}
		if u := sketchUpper(b); v > u {
			t.Fatalf("value %g above its bucket upper %g", v, u)
		}
		prevV, prevB = v, b
	}
}
