// Package stats provides the deterministic random-number generation,
// probability distributions, and summary statistics (percentiles, histograms,
// CDFs) used across the simulator. Everything is seeded explicitly so that
// experiments are reproducible bit-for-bit.
package stats

import "math"

// RNG is a small, fast, deterministic generator (xoshiro256** seeded via
// SplitMix64). It is not safe for concurrent use; each model component owns
// its own stream.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from a single 64-bit seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

// Split derives an independent child stream. Children with distinct labels
// are statistically independent of each other and of the parent.
func (r *RNG) Split(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xBF58476D1CE4E5B9))
}

func splitmix64(state uint64) (next, out uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). Panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed sample (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed sample parameterized by the
// desired mean and sigma of the underlying normal in log space.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a bounded Pareto-like heavy-tailed sample with the given
// minimum and shape alpha (> 0). Smaller alpha means heavier tail.
func (r *RNG) Pareto(xmin, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// Shuffle permutes the integers [0,n) via Fisher-Yates and calls swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the CDF once; construct via NewZipf.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// N reports the number of items the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next Zipf-distributed rank in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
