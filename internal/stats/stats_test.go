package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	equal := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split streams overlap: %d equal draws", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := NewRNG(2)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Fatalf("exp mean = %v, want ~100", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(4)
	vs := make([]float64, 100000)
	for i := range vs {
		vs[i] = r.Normal(10, 3)
	}
	mean, sd := MeanStddev(vs)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(sd-3) > 0.1 {
		t.Fatalf("normal stddev = %v", sd)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn did not cover range: %v", seen)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(6)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	trues := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	frac := float64(trues) / 100000
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frac = %v", frac)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Pareto(10, 2)
		if v < 10 {
			t.Fatalf("Pareto below xmin: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(9)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Rank 0 should get roughly 1/H(100) ~ 19% of draws.
	frac := float64(counts[0]) / 100000
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("zipf rank-0 frac = %v", frac)
	}
}

func TestRecorderQuantiles(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
	if got := r.P50(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("P50 = %v", got)
	}
	if got := r.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := r.Quantile(1); got != 100 {
		t.Fatalf("Q1 = %v", got)
	}
	if got := r.P99(); got < 99 || got > 100 {
		t.Fatalf("P99 = %v", got)
	}
	if got := r.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if r.Min() != 1 || r.Max() != 100 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRecorderInterleavedAddQuery(t *testing.T) {
	r := NewRecorder()
	r.Add(10)
	_ = r.P50()
	r.Add(20) // must re-sort after this
	if got := r.Quantile(1); got != 20 {
		t.Fatalf("Q1 = %v after interleaved add", got)
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder()
	if r.P50() != 0 || r.P99() != 0 || r.Mean() != 0 || r.Max() != 0 || r.Min() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
	if r.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.Add(5)
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
	r.Add(7)
	if r.P50() != 7 {
		t.Fatalf("P50 after reset = %v", r.P50())
	}
}

func TestRecorderCDFMonotone(t *testing.T) {
	rng := NewRNG(11)
	r := NewRecorder()
	for i := 0; i < 5000; i++ {
		r.Add(rng.Exp(250))
	}
	cdf := r.CDF(20)
	if len(cdf) != 20 {
		t.Fatalf("CDF len = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value {
			t.Fatalf("CDF values not monotone at %d", i)
		}
		if cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("CDF fractions not increasing at %d", i)
		}
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Fatalf("last fraction = %v", cdf[len(cdf)-1].Fraction)
	}
}

func TestFractionBelow(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 10; i++ {
		r.Add(float64(i))
	}
	if got := r.FractionBelow(5); got != 0.5 {
		t.Fatalf("FractionBelow(5) = %v", got)
	}
	if got := r.FractionBelow(0); got != 0 {
		t.Fatalf("FractionBelow(0) = %v", got)
	}
	if got := r.FractionBelow(100); got != 1 {
		t.Fatalf("FractionBelow(100) = %v", got)
	}
}

func TestQuantileProperty(t *testing.T) {
	// Property: for any sample set, quantiles are monotone in q and bounded
	// by min/max.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder()
		for _, v := range raw {
			r.Add(float64(v))
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := r.Quantile(q)
			if v < prev || v < r.Min() || v > r.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5) // clamps to first bucket
	h.Add(0.5)
	h.Add(9.9)
	h.Add(15) // clamps to last bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Bucket(0) != 2 {
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
	if h.Bucket(9) != 2 {
		t.Fatalf("bucket 9 = %d", h.Bucket(9))
	}
	lo, hi := h.BucketBounds(3)
	if lo != 3 || hi != 4 {
		t.Fatalf("bounds = %v %v", lo, hi)
	}
	if h.NumBuckets() != 10 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{2, 0, -3, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean with skips = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
}

func TestMeanStddevEmpty(t *testing.T) {
	m, s := MeanStddev(nil)
	if m != 0 || s != 0 {
		t.Fatal("MeanStddev(nil) should be zeros")
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for Zipf n<=0")
		}
	}()
	NewZipf(NewRNG(1), 0, 1)
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestKSStatisticAgainstExponential(t *testing.T) {
	rng := NewRNG(21)
	r := NewRecorder()
	const mean = 200.0
	for i := 0; i < 20000; i++ {
		r.Add(rng.Exp(mean))
	}
	cdf := func(x float64) float64 { return 1 - math.Exp(-x/mean) }
	ks := r.KSStatistic(cdf)
	// Critical value at alpha=0.01 for n=20000 is ~1.63/sqrt(n) = 0.0115.
	if ks > 0.0115 {
		t.Fatalf("exponential sampler fails KS test: D=%v", ks)
	}
	// A wrong reference distribution must be rejected decisively.
	bad := func(x float64) float64 { return 1 - math.Exp(-x/(2*mean)) }
	if r.KSStatistic(bad) < 0.1 {
		t.Fatal("KS statistic failed to separate distinct distributions")
	}
	empty := NewRecorder()
	if empty.KSStatistic(cdf) != 0 {
		t.Fatal("empty recorder KS should be 0")
	}
}
