package experiments

import (
	"fmt"

	"hardharvest/internal/cluster"
)

// Summary computes the paper's headline claims live and marks each one as
// holding or not at the current scale — a one-stop verification of the
// reproduction (the EXPERIMENTS.md claims table, regenerated).
func Summary(sc Scale) *Table {
	res := fiveSystems(sc)
	no := res[cluster.NoHarvest]
	ht := res[cluster.HarvestTerm]
	hb := res[cluster.HarvestBlock]
	hht := res[cluster.HardHarvestTerm]
	hhb := res[cluster.HardHarvestBlock]

	t := &Table{
		ID:      "summary",
		Title:   "Headline claims, paper vs measured",
		Columns: []string{"Claim", "Paper", "Measured", "Holds"},
	}
	add := func(claim, paper string, measured string, holds bool) {
		ok := "yes"
		if !holds {
			ok = "NO"
		}
		t.AddRow(claim, paper, measured, ok)
	}

	noP99 := float64(no.AvgP99())
	add("Harvest-Term P99 vs NoHarvest", "3.4x",
		fmt.Sprintf("%.2fx", float64(ht.AvgP99())/noP99),
		float64(ht.AvgP99()) > 1.8*noP99)
	add("Harvest-Block P99 vs NoHarvest", "4.1x",
		fmt.Sprintf("%.2fx", float64(hb.AvgP99())/noP99),
		float64(hb.AvgP99()) > 1.8*noP99)
	add("HardHarvest tail cut vs Harvest-Term", "-83.3%",
		fmt.Sprintf("%.1f%%", 100*(float64(hhb.AvgP99())/float64(ht.AvgP99())-1)),
		float64(hhb.AvgP99()) < 0.5*float64(ht.AvgP99()))
	add("HardHarvest-Term P99 vs NoHarvest", "-30.5%",
		fmt.Sprintf("%.1f%%", 100*(float64(hht.AvgP99())/noP99-1)),
		float64(hht.AvgP99()) <= noP99)
	add("HardHarvest-Block P50 vs NoHarvest", "-26.1%",
		fmt.Sprintf("%.1f%%", 100*(float64(hhb.AvgP50())/float64(no.AvgP50())-1)),
		hhb.AvgP50() < no.AvgP50())
	add("Utilization HardHarvest-Block vs Harvest-Term", "1.5x",
		fmt.Sprintf("%.2fx", hhb.BusyCores/ht.BusyCores),
		hhb.BusyCores > 1.2*ht.BusyCores)
	add("Utilization HardHarvest-Block vs NoHarvest", "3.4x",
		fmt.Sprintf("%.2fx", hhb.BusyCores/no.BusyCores),
		hhb.BusyCores > 2*no.BusyCores)
	add("Throughput HardHarvest-Block vs NoHarvest", "3.1x",
		fmt.Sprintf("%.2fx", hhb.HarvestJobsPerSec/no.HarvestJobsPerSec),
		hhb.HarvestJobsPerSec > 2*no.HarvestJobsPerSec)
	add("Throughput HardHarvest-Block vs Harvest-Term", "1.8x",
		fmt.Sprintf("%.2fx", hhb.HarvestJobsPerSec/ht.HarvestJobsPerSec),
		hhb.HarvestJobsPerSec > ht.HarvestJobsPerSec)
	t.Note("thresholds are deliberately loose (ordering and rough factor), per the reproduction goal")
	return t
}
