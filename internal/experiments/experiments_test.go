package experiments

import (
	"strconv"
	"strings"
	"testing"

	"hardharvest/internal/sim"
)

// tiny returns the cheapest scale that still yields stable orderings.
func tiny() Scale {
	return Scale{Measure: 250 * sim.Millisecond, Warmup: 30 * sim.Millisecond, Servers: 2, Seed: 1}
}

func cellF(t *testing.T, tbl *Table, row, col string) float64 {
	t.Helper()
	v, ok := tbl.Cell(row, col)
	if !ok {
		t.Fatalf("%s: missing cell (%q, %q)", tbl.ID, row, col)
	}
	v = strings.TrimSuffix(strings.TrimSuffix(v, "%"), "x")
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		t.Fatalf("%s: cell (%q,%q) = %q: %v", tbl.ID, row, col, v, err)
	}
	return f
}

func TestRunnersRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range Runners() {
		if ids[r.ID] {
			t.Fatalf("duplicate runner id %q", r.ID)
		}
		ids[r.ID] = true
		if r.Run == nil || r.Name == "" {
			t.Fatalf("incomplete runner %q", r.ID)
		}
	}
	for _, want := range []string{"fig2", "fig4", "fig11", "fig14", "fig17", "util", "storage", "fig19"} {
		if !ids[want] {
			t.Errorf("missing runner %q", want)
		}
	}
	if ByID("fig11") == nil {
		t.Fatal("ByID failed")
	}
	if ByID("nope") != nil {
		t.Fatal("ByID returned unknown runner")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Columns: []string{"A", "B"}}
	tbl.AddRow("r1", "v1")
	tbl.Note("hello %d", 42)
	s := tbl.String()
	for _, want := range []string{"== x: T ==", "r1", "v1", "hello 42"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	if _, ok := tbl.Cell("r1", "B"); !ok {
		t.Error("Cell lookup failed")
	}
	if _, ok := tbl.Cell("r1", "Z"); ok {
		t.Error("Cell lookup of unknown column succeeded")
	}
}

func TestFig2Calibration(t *testing.T) {
	tbl := Fig2(tiny())
	if len(tbl.Rows) != 20 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// CDF at 0.15 should sit near 0.5 for the average curve; max curve lags.
	avg := cellF(t, tbl, "0.15", "AlibabaAvg CDF")
	max := cellF(t, tbl, "0.15", "AlibabaMax CDF")
	if avg < 0.35 || avg > 0.60 {
		t.Errorf("avg CDF at 0.15 = %v", avg)
	}
	if max >= avg {
		t.Errorf("max CDF %v should lag avg CDF %v", max, avg)
	}
	// Curves are monotone.
	prev := 0.0
	for _, r := range tbl.Rows {
		v := cellF(t, tbl, r.Label, "AlibabaAvg CDF")
		if v < prev {
			t.Fatalf("avg CDF not monotone at %s", r.Label)
		}
		prev = v
	}
}

func TestFig3Series(t *testing.T) {
	tbl := Fig3(tiny())
	if len(tbl.Rows) < 10 {
		t.Fatalf("series rows = %d", len(tbl.Rows))
	}
	lo, hi := 2.0, -1.0
	for _, r := range tbl.Rows {
		v := cellF(t, tbl, r.Label, "Utilization")
		if v < 0 || v > 1 {
			t.Fatalf("utilization out of range: %v", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < 2*lo {
		t.Errorf("series shows no bursts: lo=%v hi=%v", lo, hi)
	}
}

func TestFig4And5Shapes(t *testing.T) {
	sc := tiny()
	f4 := Fig4(sc)
	if len(f4.Rows) != 5 {
		t.Fatalf("fig4 rows = %d", len(f4.Rows))
	}
	noMove := cellF(t, f4, "No-Move", "Avg")
	for _, v := range []string{"KVM-Term", "KVM-Block", "Opt-Term", "Opt-Block"} {
		if got := cellF(t, f4, v, "Avg"); got < noMove*1.2 {
			t.Errorf("fig4 %s avg %.3f not above No-Move %.3f", v, got, noMove)
		}
	}
	f5 := Fig5(sc)
	noFlush := cellF(t, f5, "No-Flush", "Avg")
	if got := cellF(t, f5, "Harvest-Block", "Avg"); got < noFlush*1.3 {
		t.Errorf("fig5 Harvest-Block %.3f not well above No-Flush %.3f", got, noFlush)
	}
}

func TestFig6Breakdown(t *testing.T) {
	tbl := Fig6(tiny())
	if len(tbl.Rows) == 0 {
		t.Fatal("no breakdown rows")
	}
	for _, r := range tbl.Rows {
		slow := cellF(t, tbl, r.Label, "Slowdown")
		if slow < 1.0 {
			t.Errorf("%s slowdown %.2f < 1", r.Label, slow)
		}
	}
}

func TestFig7SmallImpact(t *testing.T) {
	tbl := Fig7(tiny())
	full := cellF(t, tbl, "100%", "Avg")
	half := cellF(t, tbl, "50%", "Avg")
	quarter := cellF(t, tbl, "25%", "Avg")
	inf := cellF(t, tbl, "Inf", "Avg")
	if inf > full {
		t.Errorf("infinite hierarchy %.3f should not be slower than full %.3f", inf, full)
	}
	if half < full {
		t.Errorf("half hierarchy %.3f should not be faster than full %.3f", half, full)
	}
	// The paper's point: even 50% has a small impact (our synthetic
	// streams show a somewhat larger but still modest effect).
	if half > full*1.25 {
		t.Errorf("50%% impact too large: %.3f vs %.3f", half, full)
	}
	if quarter < half {
		t.Errorf("25%% %.3f should be >= 50%% %.3f", quarter, half)
	}
}

func TestFig11And16(t *testing.T) {
	sc := tiny()
	f11 := Fig11(sc)
	no := cellF(t, f11, "NoHarvest", "Avg")
	ht := cellF(t, f11, "Harvest-Term", "Avg")
	hhb := cellF(t, f11, "HardHarvest-Block", "Avg")
	if ht < 1.8*no {
		t.Errorf("fig11 Harvest-Term %.2f not well above NoHarvest %.2f", ht, no)
	}
	if hhb > no {
		t.Errorf("fig11 HardHarvest-Block %.2f above NoHarvest %.2f", hhb, no)
	}
	f16 := Fig16(sc)
	noM := cellF(t, f16, "NoHarvest", "Avg")
	hhbM := cellF(t, f16, "HardHarvest-Block", "Avg")
	if hhbM >= noM {
		t.Errorf("fig16 HardHarvest median %.3f should be below NoHarvest %.3f", hhbM, noM)
	}
}

func TestFig12Ladder(t *testing.T) {
	tbl := Fig12(tiny())
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	start := cellF(t, tbl, "Harvest-Block", "Avg P99 [ms]")
	end := cellF(t, tbl, "HardHarvest", "Avg P99 [ms]")
	if end > 0.5*start {
		t.Errorf("ladder reduction too small: %.3f -> %.3f", start, end)
	}
}

func TestFig14Policies(t *testing.T) {
	tbl := Fig14(tiny())
	lru := cellF(t, tbl, "Avg", "Vanilla LRU")
	rrip := cellF(t, tbl, "Avg", "RRIP")
	hh := cellF(t, tbl, "Avg", "HardHarvest")
	bel := cellF(t, tbl, "Avg", "Belady")
	t.Logf("fig14 avg: LRU=%.1f RRIP=%.1f HH=%.1f Belady=%.1f", lru, rrip, hh, bel)
	if hh <= lru || hh <= rrip {
		t.Errorf("HardHarvest %.1f should beat LRU %.1f and RRIP %.1f", hh, lru, rrip)
	}
	if bel < hh {
		t.Errorf("Belady %.1f below HardHarvest %.1f", bel, hh)
	}
}

func TestFig17Normalization(t *testing.T) {
	sc := tiny()
	sc.Servers = 2
	tbl := Fig17(sc)
	for _, r := range tbl.Rows {
		if got := cellF(t, tbl, r.Label, "NoHarvest"); got != 1.0 {
			t.Errorf("%s NoHarvest normalization = %.2f", r.Label, got)
		}
		hhb := cellF(t, tbl, r.Label, "HardHarvest-Block")
		ht := cellF(t, tbl, r.Label, "Harvest-Term")
		if hhb <= ht {
			t.Errorf("%s: HardHarvest-Block %.2f should exceed Harvest-Term %.2f", r.Label, hhb, ht)
		}
	}
}

func TestUtilizationTable(t *testing.T) {
	tbl := UtilizationTable(tiny())
	no := cellF(t, tbl, "NoHarvest", "Busy cores")
	hhb := cellF(t, tbl, "HardHarvest-Block", "Busy cores")
	if hhb < 2*no {
		t.Errorf("HardHarvest-Block busy %.1f should dwarf NoHarvest %.1f", hhb, no)
	}
	if hhb > 36 {
		t.Errorf("busy cores %.1f exceed the server", hhb)
	}
}

func TestStorageTableNumbers(t *testing.T) {
	tbl := StorageTable(Scale{})
	if v, _ := tbl.Cell("RQ (2K entries x 66b)", "Cost"); v != "16896 B" {
		t.Errorf("RQ cost = %q", v)
	}
	if v, _ := tbl.Cell("Controller total", "Cost"); v != "18.95 KB" {
		t.Errorf("controller total = %q", v)
	}
	if v, _ := tbl.Cell("Controller per core", "Cost"); v != "0.53 KB" {
		t.Errorf("per core = %q", v)
	}
}

func TestTable1Parameters(t *testing.T) {
	tbl := Table1(Scale{})
	if v, _ := tbl.Cell("L1D", "Value"); !strings.Contains(v, "48 KB, 12-way") {
		t.Errorf("L1D = %q", v)
	}
	if v, _ := tbl.Cell("L2TLB", "Value"); !strings.Contains(v, "2048 entries") {
		t.Errorf("L2TLB = %q", v)
	}
	if v, _ := tbl.Cell("RQ", "Value"); !strings.Contains(v, "32 chunks x 64") {
		t.Errorf("RQ = %q", v)
	}
}

func TestFig18Ordering(t *testing.T) {
	tbl := Fig18(tiny())
	big := cellF(t, tbl, "2.5MB/core", "Avg")
	def := cellF(t, tbl, "2MB/core", "Avg")
	small := cellF(t, tbl, "0.5MB/core", "Avg")
	if big > def*1.02 {
		t.Errorf("larger LLC should not be slower: %.3f vs %.3f", big, def)
	}
	if small < def {
		t.Errorf("smaller LLC should be slower: %.3f vs %.3f", small, def)
	}
	// Changes stay small (modest footprints).
	if small > def*1.35 {
		t.Errorf("0.5MB impact too large: %.3f vs %.3f", small, def)
	}
}

func TestFig19Window(t *testing.T) {
	tbl := Fig19(tiny())
	w25 := cellF(t, tbl, "25%", "Avg")
	w75 := cellF(t, tbl, "75%", "Avg")
	if w25 < w75 {
		t.Errorf("25%% window %.3f should be slower than 75%% %.3f (shared lines lost)", w25, w75)
	}
}

func TestApplicationComposition(t *testing.T) {
	tbl := Application(tiny())
	if len(tbl.Rows) != 3 {
		t.Fatalf("apps = %d", len(tbl.Rows))
	}
	for _, row := range []string{"ComposePost", "ReadTimeline", "FollowUser"} {
		no := cellF(t, tbl, row, "NoHarvest")
		ht := cellF(t, tbl, row, "Harvest-Term")
		hhb := cellF(t, tbl, row, "HardHarvest-Block")
		if ht <= no {
			t.Errorf("%s: software harvesting E2E %.2f should exceed NoHarvest %.2f", row, ht, no)
		}
		if hhb > no {
			t.Errorf("%s: HardHarvest E2E %.2f should not exceed NoHarvest %.2f", row, hhb, no)
		}
	}
	// Composition amplifies: the app-level software/no-harvest ratio is at
	// least the worst single-service ratio seen at the median... assert the
	// simple direction: ComposePost E2E exceeds its slowest stage tail.
	f11 := Fig11(tiny())
	cpost := cellF(t, f11, "NoHarvest", "CPost")
	e2e := cellF(t, tbl, "ComposePost", "NoHarvest")
	if e2e <= cpost {
		t.Errorf("E2E %.2f should exceed the slowest stage %.2f", e2e, cpost)
	}
}

func TestExtensionsTable(t *testing.T) {
	tbl := Extensions(tiny())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	base := cellF(t, tbl, "HardHarvest-Block", "Jobs/s")
	buf2 := cellF(t, tbl, "+BurstBuffer-2", "Jobs/s")
	if buf2 >= base {
		t.Errorf("burst buffer should cost throughput: %.0f vs %.0f", buf2, base)
	}
}

func TestProfilingSweep(t *testing.T) {
	tbl := Profiling(tiny())
	if len(tbl.Rows) != 20 {
		t.Fatalf("rows = %d, want 20 services", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		measured := cellF(t, tbl, r.Label, "Shared access frac")
		want := cellF(t, tbl, r.Label, "Profile SharedFrac")
		if d := measured - want; d < -0.1 || d > 0.1 {
			t.Errorf("%s: measured %.3f vs profile %.2f", r.Label, measured, want)
		}
	}
}

func TestLoadSweepOrdering(t *testing.T) {
	sc := tiny()
	sc.Measure = 200 * sim.Millisecond
	tbl := LoadSweep(sc)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Latency grows with load for every system; at each load HardHarvest
	// stays below the software baseline.
	var prevHH float64
	for i, r := range tbl.Rows {
		hh := cellF(t, tbl, r.Label, "HardHarvest-Block P99 [ms]")
		sw := cellF(t, tbl, r.Label, "Harvest-Term P99 [ms]")
		if hh >= sw {
			t.Errorf("%s: HardHarvest %.3f not below software %.3f", r.Label, hh, sw)
		}
		if i > 0 && hh < prevHH*0.7 {
			t.Errorf("%s: latency dropped sharply with more load", r.Label)
		}
		prevHH = hh
	}
}

func TestSummaryAllClaimsHold(t *testing.T) {
	tbl := Summary(tiny())
	if len(tbl.Rows) != 9 {
		t.Fatalf("claims = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if v, _ := tbl.Cell(r.Label, "Holds"); v != "yes" {
			t.Errorf("claim %q does not hold at test scale", r.Label)
		}
	}
}
