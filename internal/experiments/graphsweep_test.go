package experiments

import (
	"math"
	"strconv"
	"testing"

	"hardharvest/internal/graph"
	"hardharvest/internal/sim"
)

func graphScale() Scale {
	return Scale{Measure: 250 * sim.Millisecond, Warmup: 30 * sim.Millisecond, Servers: 2, Seed: 1}
}

// TestGraphSweepTable pins the sweep's shape: one row per placement, the
// e2e and per-tier hop tail columns all populated with parseable latencies.
func TestGraphSweepTable(t *testing.T) {
	tbl := GraphSweep(graphScale())
	if tbl.ID != "graphsweep" {
		t.Fatalf("table id = %q", tbl.ID)
	}
	if len(tbl.Columns) != 7 {
		t.Fatalf("want 7 columns, got %d: %v", len(tbl.Columns), tbl.Columns)
	}
	wantRows := []string{"none", "frontend", "logic", "leaf", "all"}
	if len(tbl.Rows) != len(wantRows) {
		t.Fatalf("want %d rows, got %d", len(wantRows), len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		if row.Label != wantRows[i] {
			t.Errorf("row %d label = %q, want %q", i, row.Label, wantRows[i])
		}
		for j, cell := range row.Cells {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v <= 0 {
				t.Errorf("row %s cell %d = %q, want a positive latency", row.Label, j, cell)
			}
		}
	}
}

// TestHarvestPlacementShapesE2ETail is the paper's core DAG claim reduced
// to an executable assertion: harvesting cores in the leaf tier shapes the
// end-to-end p99 measurably differently than the identical harvesting in
// the frontend tier, under a byte-identical arrival stream. The simulator
// is deterministic, so the placements either separate or they don't.
func TestHarvestPlacementShapesE2ETail(t *testing.T) {
	sc := graphScale()
	spec := graph.SocialNet(20 * sim.Microsecond)
	front := runGraphFleet(sc, spec, "frontend")
	leaf := runGraphFleet(sc, spec, "leaf")
	if front.E2E.Count() == 0 || front.E2E.Count() != leaf.E2E.Count() {
		t.Fatalf("placement changed the admitted request stream: %d vs %d measured completions",
			front.E2E.Count(), leaf.E2E.Count())
	}
	fp99, lp99 := front.E2E.P99(), leaf.E2E.P99()
	rel := math.Abs(fp99-lp99) / math.Max(fp99, lp99)
	if rel < 0.02 {
		t.Fatalf("frontend vs leaf harvesting left the e2e p99 indistinguishable: %.4fms vs %.4fms (%.2f%%)",
			fp99, lp99, rel*100)
	}
	t.Logf("e2e p99: frontend-harvest=%.3fms leaf-harvest=%.3fms (%.1f%% apart)", fp99, lp99, rel*100)
}

// TestGraphSweepDeterministic: the sweep must render identically across
// repeats (it feeds the experiment registry and the golden path).
func TestGraphSweepDeterministic(t *testing.T) {
	a, b := GraphSweep(graphScale()), GraphSweep(graphScale())
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts diverged: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i].Cells {
			if a.Rows[i].Cells[j] != b.Rows[i].Cells[j] {
				t.Fatalf("cell [%d][%d] diverged: %q vs %q", i, j, a.Rows[i].Cells[j], b.Rows[i].Cells[j])
			}
		}
	}
}
