package experiments

import (
	"fmt"

	"hardharvest/internal/cluster"
	"hardharvest/internal/core"
	"hardharvest/internal/mem"
	"hardharvest/internal/workload"
)

// Fig14 reproduces the L2 replacement-policy comparison: hit rate under
// vanilla LRU, RRIP, the HardHarvest policy (Algorithm 1), and flush-aware
// Belady, on per-service harvesting traces.
func Fig14(sc Scale) *Table {
	policies := []mem.PolicyKind{mem.PolicyLRU, mem.PolicySRRIP, mem.PolicyHardHarvest, mem.PolicyBelady}
	t := &Table{
		ID:      "fig14",
		Title:   "L2 hit rate with different replacement policies",
		Columns: []string{"Service", "Vanilla LRU", "RRIP", "HardHarvest", "Belady"},
	}
	sums := make([]float64, len(policies))
	profiles := workload.Profiles()
	// One pool job per service: generate its harvesting trace and run all
	// four policies against it (the trace dominates the job's footprint, so
	// sharing it within the job beats splitting per policy).
	hits := collect(len(profiles), func(i int) []float64 {
		p := profiles[i]
		sp := pressureStreamFor(p)
		tr := mem.GenerateHarvestingTrace(sp, sc.Seed^uint64(p.FootprintKB), 25, 2)
		out := make([]float64, len(policies))
		for pi, pol := range policies {
			cfg := mem.StructConfig(mem.L2, mem.DefaultHierarchyParams())
			cfg.Policy = pol
			out[pi] = mem.SimulateTrace(cfg, tr).HitRate()
		}
		return out
	})
	for i, p := range profiles {
		cells := make([]string, 0, len(policies))
		for pi := range policies {
			sums[pi] += hits[i][pi]
			cells = append(cells, pct(hits[i][pi]))
		}
		t.AddRow(p.Name, cells...)
	}
	avgCells := make([]string, len(policies))
	for i, s := range sums {
		avgCells[i] = pct(s / float64(len(profiles)))
	}
	t.AddRow("Avg", avgCells...)
	lru, rrip, hh, bel := sums[0], sums[1], sums[2], sums[3]
	t.Note("HardHarvest vs LRU %+.1f%%, vs RRIP %+.1f%%, Belady-HardHarvest gap %.1f%% (paper: +11.3%%, +8.2%%, within 3.1%%)",
		100*(hh/lru-1), 100*(hh/rrip-1), 100*(bel-hh)/float64(len(profiles)))
	return t
}

// Fig18 reproduces the LLC-size sensitivity: P99 of HardHarvest-Block with
// 2.5/2/1/0.5 MB of LLC per core. The per-size execution factor is derived
// from simulating each service's stream against an LLC model of that size.
func Fig18(sc Scale) *Table {
	sizes := []struct {
		label string
		ways  int // sets fixed at 2048: 2 MB/core is 16-way (64B lines)
	}{
		{"2.5MB/core", 20}, {"2MB/core", 16}, {"1MB/core", 8}, {"0.5MB/core", 4},
	}
	profiles := workload.Profiles()
	// Per-size mean miss rate over the service streams: every (size,
	// profile) cache simulation is independent, so fan them all out.
	rates := collect(len(sizes)*len(profiles), func(i int) float64 {
		sz, p := sizes[i/len(profiles)], profiles[i%len(profiles)]
		cfg := mem.Config{
			Name: "LLC", Sets: 2048, Ways: sz.ways, LineBytes: 64,
			Policy: mem.PolicyLRU,
		}
		sp := streamFor(p)
		tr := mem.GenerateHarvestingTrace(sp, sc.Seed^uint64(p.FootprintKB), 10, 0)
		return mem.SimulateTrace(cfg, tr).MissRate()
	})
	miss := make([]float64, len(sizes))
	for si := range sizes {
		var sum float64
		for pi := range profiles {
			sum += rates[si*len(profiles)+pi]
		}
		miss[si] = sum / float64(len(profiles))
	}
	t := &Table{
		ID:      "fig18",
		Title:   "P99 tail [ms] of HardHarvest-Block with different LLC sizes",
		Columns: append(append([]string{"LLC size"}, serviceOrder...), "Avg"),
	}
	baseMiss := miss[1] // 2 MB/core is the default
	runs := make([]preparedRun, 0, len(sizes))
	for si, sz := range sizes {
		cfg := baseConfig(sc)
		// Each additional point of LLC miss rate costs memory latency on
		// the affected accesses; fold into the execution factor.
		cfg.LLCFactor = 1 + 2.0*(miss[si]-baseMiss)
		if cfg.LLCFactor < 0.9 {
			cfg.LLCFactor = 0.9
		}
		o := cluster.SystemOptions(cluster.HardHarvestBlock)
		o.Observer = sc.observerFor(sz.label + "/" + o.Name)
		runs = append(runs, preparedRun{cfg: cfg, opts: o, work: defaultWork()})
	}
	for si, r := range runPrepared(runs) {
		t.AddRow(sizes[si].label, perServiceP99Row(r)...)
	}
	t.Note("paper: latency changes are small because microservice footprints are modest; larger LLC helps slightly")
	return t
}

// Fig19 reproduces the eviction-candidate-set sensitivity: P99 of
// HardHarvest with the candidate window at 25/50/75/100%% of the ways. The
// per-service execution factor comes from L2 simulations at each window
// size.
func Fig19(sc Scale) *Table {
	// The baseline server run and every L2 window simulation are mutually
	// independent: kick the server run off first, overlap the cache sims
	// with it, and join at table-assembly time.
	var baseG Group[*cluster.ServerResult]
	baseRun := prepareOne(sc, cluster.SystemOptions(cluster.HardHarvestBlock), "")
	baseG.Submit(func() *cluster.ServerResult {
		return cluster.RunServer(baseRun.cfg, baseRun.opts, baseRun.work)
	})
	fracs := []float64{0.25, 0.50, 0.75, 1.00}
	profiles := workload.Profiles()
	t := &Table{
		ID:      "fig19",
		Title:   "P99 tail [ms] of HardHarvest with different eviction candidate sets",
		Columns: append(append([]string{"Candidates"}, serviceOrder...), "Avg"),
	}
	hitAt := func(p *workload.Profile, frac float64) float64 {
		cfg := mem.StructConfig(mem.L2, mem.DefaultHierarchyParams())
		cfg.Policy = mem.PolicyHardHarvest
		cfg.EvictionCandidateFrac = frac
		sp := pressureStreamFor(p)
		tr := mem.GenerateHarvestingTrace(sp, sc.Seed^uint64(p.FootprintKB), 25, 2)
		return mem.SimulateTrace(cfg, tr).HitRate()
	}
	// Reference hit rates at the default 75% window, then every (window,
	// service) point.
	refHits := collect(len(profiles), func(i int) float64 {
		return hitAt(profiles[i], 0.75)
	})
	ref := make(map[string]float64, len(profiles))
	for i, p := range profiles {
		ref[p.Name] = refHits[i]
	}
	hits := collect(len(fracs)*len(profiles), func(i int) float64 {
		return hitAt(profiles[i%len(profiles)], fracs[i/len(profiles)])
	})
	base := baseG.Wait()[0]
	for fi, frac := range fracs {
		cells := make([]string, 0, len(serviceOrder)+1)
		var sum float64
		for pi, p := range profiles {
			factor := l2ExecFactor(hits[fi*len(profiles)+pi]) / l2ExecFactor(ref[p.Name])
			est := scaleLatency(base.P99(p.Name), p, factor)
			cells = append(cells, ms(est))
			sum += est.Milliseconds()
		}
		cells = append(cells, fmt.Sprintf("%.3f", sum/float64(len(profiles))))
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100), cells...)
	}
	t.Note("paper: 25%%/50%% hurt shared-line preservation; 100%% evicts needed private lines; 75%% is the sweet spot")
	return t
}

// StorageTable reproduces §6.8: the hardware storage cost of the
// HardHarvest controller and the per-entry Shared bits.
func StorageTable(Scale) *Table {
	c := core.ComputeStorageCost(core.DefaultStorageParams())
	t := &Table{
		ID:      "storage",
		Title:   "HardHarvest storage cost (§6.8)",
		Columns: []string{"Component", "Cost"},
	}
	t.AddRow("RQ (2K entries x 66b)", fmt.Sprintf("%d B", c.RQBytes))
	t.AddRow("Per QM + VM-state pair", fmt.Sprintf("%d B", c.PerQMPairBytes))
	t.AddRow("16 QM pairs", fmt.Sprintf("%d B", c.QMPairsBytes))
	t.AddRow("Controller total", fmt.Sprintf("%.2f KB", float64(c.ControllerBytes)/1024))
	t.AddRow("Controller per core", fmt.Sprintf("%.2f KB", c.ControllerPerCoreB/1024))
	t.AddRow("Shared bits per core", fmt.Sprintf("%d bits (%.2f KB)", c.SharedBitsPerCoreBits, c.SharedBitsPerCoreB/1024))
	t.AddRow("Shared bits per server", fmt.Sprintf("%.1f KB", c.SharedBitsServerBytes/1024))
	t.Note("paper: controller 18.9 KB (0.53 KB/core); Shared bits 67.8 KB/server (1.9 KB/core) — our Table 1 arithmetic yields %.1f KB/server, a documented discrepancy",
		c.SharedBitsServerBytes/1024)
	t.Note("paper (McPAT, 7 nm): +0.19%% area, +0.16%% power for the multicore")
	return t
}

// Table1 prints the architectural parameters used throughout (Table 1).
func Table1(Scale) *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Architectural parameters (Table 1)",
		Columns: []string{"Parameter", "Value"},
	}
	hp := mem.DefaultHierarchyParams()
	for _, k := range []mem.StructKind{mem.L1D, mem.L1I, mem.L2, mem.L1TLB, mem.L2TLB} {
		cfg := mem.StructConfig(k, hp)
		if k == mem.L1TLB || k == mem.L2TLB {
			t.AddRow(cfg.Name, fmt.Sprintf("%d entries, %d-way", cfg.Entries(), cfg.Ways))
		} else {
			t.AddRow(cfg.Name, fmt.Sprintf("%d KB, %d-way, 64B lines", cfg.SizeBytes()/1024, cfg.Ways))
		}
	}
	ctrl := core.DefaultStorageParams()
	t.AddRow("RQ", fmt.Sprintf("%d chunks x %d entries", ctrl.NumChunks, ctrl.ChunkEntries))
	t.AddRow("Queue Managers", fmt.Sprintf("%d", ctrl.NumQMs))
	t.AddRow("VM State registers", fmt.Sprintf("%d x %dB", ctrl.VMStateRegs, ctrl.VMStateRegB))
	t.AddRow("Harvest region", "50% of all ways")
	t.AddRow("Eviction candidates", "75% of all ways")
	t.AddRow("Flush+Inv harvest region", "1000 cycles")
	t.AddRow("Server", "36 cores at 3 GHz, 8x 4-core Primary VMs + 1 Harvest VM")
	return t
}
