package experiments

import (
	"hardharvest/internal/app"
	"hardharvest/internal/cluster"
	"hardharvest/internal/stats"
)

// Application composes the measured per-service latency distributions into
// end-to-end application latencies over Figure 1's ComposePost DAG (plus a
// read-side and a short write-side application). Composition amplifies
// per-service tails — the "tail at scale" effect motivating the paper's
// focus on P99 — so the gap between software harvesting and HardHarvest
// widens at the application level.
func Application(sc Scale) *Table {
	res := fiveSystems(sc)
	apps := app.Apps()
	cols := []string{"Application"}
	for _, k := range cluster.Systems() {
		cols = append(cols, k.String())
	}
	t := &Table{
		ID:      "app",
		Title:   "End-to-end application P99 [ms] (Monte-Carlo over the service DAGs)",
		Columns: cols,
	}
	const trials = 20000
	// Each (application, system) Monte-Carlo composition seeds its own RNG,
	// so the 15 pairs fan out on the pool like any other sweep.
	systems := cluster.Systems()
	vals := collect(len(apps)*len(systems), func(i int) float64 {
		a, k := apps[i/len(systems)], systems[i%len(systems)]
		src := app.RecorderSource(res[k].Service)
		rec, err := a.SimulateE2E(src, stats.NewRNG(sc.Seed+uint64(len(a.Name))), trials)
		if err != nil {
			panic(err)
		}
		return rec.P99().Milliseconds()
	})
	p99 := map[string]map[cluster.SystemKind]float64{}
	for ai, a := range apps {
		cells := make([]string, 0, len(systems))
		p99[a.Name] = map[cluster.SystemKind]float64{}
		for si, k := range systems {
			v := vals[ai*len(systems)+si]
			p99[a.Name][k] = v
			cells = append(cells, f3(v))
		}
		t.AddRow(a.Name, cells...)
	}
	cp := p99["ComposePost"]
	t.Note("ComposePost: software harvesting %.1fx NoHarvest end-to-end; HardHarvest-Block %.2fx — composition amplifies per-service tails",
		cp[cluster.HarvestTerm]/cp[cluster.NoHarvest],
		cp[cluster.HardHarvestBlock]/cp[cluster.NoHarvest])
	return t
}
