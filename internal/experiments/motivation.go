package experiments

import (
	"fmt"

	"hardharvest/internal/cluster"
	"hardharvest/internal/mem"
	"hardharvest/internal/stats"
	"hardharvest/internal/trace"
	"hardharvest/internal/workload"
)

// Fig2 reproduces the Alibaba core-utilization CDFs: half of all instances
// average below 16.1% utilization and 90% peak below 40.7%.
func Fig2(sc Scale) *Table {
	rng := stats.NewRNG(sc.Seed)
	insts := trace.GenerateInstances(rng, 2000)
	t := &Table{
		ID:      "fig2",
		Title:   "CDF of Alibaba microservice instance core utilization",
		Columns: []string{"Utilization", "AlibabaAvg CDF", "AlibabaMax CDF"},
	}
	for u := 0.05; u <= 1.0001; u += 0.05 {
		t.AddRow(fmt.Sprintf("%.2f", u),
			f3(trace.FractionBelowAvg(insts, u)),
			f3(trace.FractionBelowMax(insts, u)))
	}
	t.Note("paper calibration: P(avg<0.161)=0.50, measured %.3f; P(max<0.407)=0.90, measured %.3f",
		trace.FractionBelowAvg(insts, 0.161), trace.FractionBelowMax(insts, 0.407))
	return t
}

// Fig3 reproduces the bursty utilization time series of a representative
// instance at 30-second granularity over ~500 s.
func Fig3(sc Scale) *Table {
	rng := stats.NewRNG(sc.Seed)
	// A representative instance: near-median average with visible bursts.
	inst := trace.Instance{AvgUtil: 0.17, MaxUtil: 0.75}
	p := trace.DefaultSeriesParams()
	series := inst.Series(rng, p)
	t := &Table{
		ID:      "fig3",
		Title:   "Core utilization of a representative instance over time",
		Columns: []string{"Time [s]", "Utilization"},
	}
	for i, u := range series {
		t.AddRow(fmt.Sprintf("%d", i*30), f3(u))
	}
	avg, max := trace.SummarizeSeries(series)
	t.Note("series avg=%.3f max=%.3f (bursts over a low base, as in the paper)", avg, max)
	return t
}

// Fig4 reproduces the hypervisor re-assignment motivation experiment: P99
// tail latency with an always-idle Harvest VM and no flushing, under
// stock-KVM and SmartHarvest-optimized move costs.
func Fig4(sc Scale) *Table {
	t := &Table{
		ID:      "fig4",
		Title:   "P99 tail latency [ms] with hypervisor core re-assignment",
		Columns: append(append([]string{"Variant"}, serviceOrder...), "Avg"),
	}
	variants := cluster.Fig4Variants()
	runs := make([]preparedRun, 0, len(variants))
	for _, o := range variants {
		runs = append(runs, prepareFlat(sc, o))
	}
	results := runPrepared(runs)
	noMove := results[0]
	for i, r := range results {
		t.AddRow(variants[i].Name, perServiceP99Row(r)...)
		if variants[i].Name != "No-Move" {
			t.Note("%s: %.2fx No-Move (paper: KVM-Term 3.2x, KVM-Block 3.8x, Opt-Term 2.7x, Opt-Block 3.1x)",
				variants[i].Name, float64(r.AvgP99())/float64(noMove.AvgP99()))
		}
	}
	return t
}

// Fig5 reproduces the flush motivation experiment: P99 with cache/TLB
// flushing on re-assignment, with and without the hypervisor cost.
func Fig5(sc Scale) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "P99 tail latency [ms] with cache/TLB flushing on re-assignment",
		Columns: append(append([]string{"Variant"}, serviceOrder...), "Avg"),
	}
	variants := cluster.Fig5Variants()
	runs := make([]preparedRun, 0, len(variants))
	for _, o := range variants {
		runs = append(runs, prepareFlat(sc, o))
	}
	results := runPrepared(runs)
	noFlush := results[0]
	for i, r := range results {
		t.AddRow(variants[i].Name, perServiceP99Row(r)...)
		if variants[i].Name != "No-Flush" {
			t.Note("%s: %.2fx No-Flush (paper: Flush-Term 2.7x, Flush-Block 3.3x, Harvest-Term 3.6x, Harvest-Block 4.2x)",
				variants[i].Name, float64(r.AvgP99())/float64(noFlush.AvgP99()))
		}
	}
	return t
}

// Fig6 reproduces the steady-state single-request breakdown: without
// harvesting (execution only) vs with software harvesting (re-assignment +
// flush/invalidate + execution), per service.
func Fig6(sc Scale) *Table {
	pair := runPrepared([]preparedRun{
		prepareOne(sc, cluster.SystemOptions(cluster.NoHarvest), ""),
		prepareOne(sc, cluster.SystemOptions(cluster.HarvestBlock), ""),
	})
	no, hv := pair[0], pair[1]
	t := &Table{
		ID:      "fig6",
		Title:   "Mean request time breakdown [ms]: NoHarvest vs software harvesting",
		Columns: []string{"Service", "NoHarv Exec", "Harv Reassign", "Harv Flush", "Harv Exec", "Harv Total", "Slowdown"},
	}
	var sumRatio float64
	n := 0
	for _, svc := range serviceOrder {
		nb, ok1 := no.ServiceBreakdown[svc]
		hb, ok2 := hv.ServiceBreakdown[svc]
		if !ok1 || !ok2 || nb.Requests == 0 || hb.Requests == 0 {
			continue
		}
		_, _, ne := nb.Mean()
		hr, hf, he := hb.Mean()
		total := hr + hf + he
		ratio := float64(total) / float64(ne)
		sumRatio += ratio
		n++
		t.AddRow(svc, ms(ne), ms(hr), ms(hf), ms(he), ms(total), f2(ratio))
	}
	if n > 0 {
		t.Note("average request takes %.2fx longer under software harvesting (paper: 1.9x)", sumRatio/float64(n))
	}
	return t
}

// Fig7 reproduces the cache/TLB size sensitivity: estimated P99 when every
// private structure keeps 100/75/50/25%% of its ways (plus an infinite
// hierarchy), driven by the set-associative models of internal/mem.
func Fig7(sc Scale) *Table {
	// The baseline run and the 8x5 hierarchy simulations all overlap.
	var baseG Group[*cluster.ServerResult]
	baseRun := prepareOne(sc, cluster.SystemOptions(cluster.NoHarvest), "")
	baseG.Submit(func() *cluster.ServerResult {
		return cluster.RunServer(baseRun.cfg, baseRun.opts, baseRun.work)
	})
	fractions := []struct {
		label string
		frac  float64 // <= 0 means infinite (all accesses hit at L1 cost)
	}{
		{"Inf", 0}, {"100%", 1.0}, {"75%", 0.75}, {"50%", 0.5}, {"25%", 0.25},
	}
	t := &Table{
		ID:      "fig7",
		Title:   "P99 tail [ms] with a fraction of the cache/TLB hierarchy",
		Columns: append(append([]string{"Caches+TLBs"}, serviceOrder...), "Avg"),
	}
	// Per-service per-fraction AMAT from real hierarchy simulation.
	profiles := workload.Profiles()
	amats := collect(len(profiles)*len(fractions), func(i int) float64 {
		return hierarchyAMAT(profiles[i/len(fractions)], fractions[i%len(fractions)].frac, sc.Seed)
	})
	amat := make(map[string]map[string]float64)
	for pi, p := range profiles {
		amat[p.Name] = make(map[string]float64)
		for fi, fr := range fractions {
			amat[p.Name][fr.label] = amats[pi*len(fractions)+fi]
		}
	}
	base := baseG.Wait()[0]
	for _, fr := range fractions {
		cells := make([]string, 0, len(serviceOrder)+1)
		var sum, cnt float64
		for _, p := range profiles {
			// ~8 cycles of compute per memory access on a 6-issue core.
			factor := (8 + amat[p.Name][fr.label]) / (8 + amat[p.Name]["100%"])
			est := scaleLatency(base.P99(p.Name), p, factor)
			cells = append(cells, ms(est))
			sum += est.Milliseconds()
			cnt++
		}
		cells = append(cells, fmt.Sprintf("%.3f", sum/cnt))
		t.AddRow(fr.label, cells...)
	}
	t.Note("paper: even at 50%% of the hierarchy the impact is very small; our synthetic streams show a modest (~15%%) effect at 50%% and a larger one at 25%%")
	return t
}

// hierarchyAMAT simulates a service's address stream against the full
// private hierarchy at the given way fraction and reports the mean access
// latency in cycles. frac <= 0 models an infinite hierarchy.
func hierarchyAMAT(p *workload.Profile, frac float64, seed uint64) float64 {
	hp := mem.DefaultHierarchyParams()
	hp.WayFraction = frac
	if frac <= 0 {
		// "Infinite" hierarchy: 16x the ways removes all capacity misses.
		hp.WayFraction = 16
	}
	h := mem.NewHierarchy(hp)
	sp := streamFor(p)
	gen := mem.NewStreamGen(sp, stats.NewRNG(seed^uint64(len(p.Name))))
	var tr mem.Trace
	// Several invocations reach the recycled-allocation steady state.
	for i := 0; i < 6; i++ {
		gen.AppendInvocation(&tr)
	}
	var totalCycles float64
	n := 0
	for _, e := range tr {
		if e.Kind != mem.EvAccess {
			continue
		}
		lat := h.AccessData(e.Addr, e.Shared, false)
		totalCycles += float64(lat.ToCycles())
		n++
	}
	if n == 0 {
		return 5
	}
	return totalCycles / float64(n)
}
