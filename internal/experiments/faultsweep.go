package experiments

import (
	"fmt"

	"hardharvest/internal/cluster"
	"hardharvest/internal/faults"
)

// FaultSweep is a robustness artifact beyond the paper's figures: tail
// latency of the five evaluated systems under increasing fault intensity
// (core degradation/offlining, I/O stragglers, preemption storms, crashes —
// the default plan of internal/faults, rate-scaled per row), plus a
// HardHarvest-Block variant with the default resilience policies (timeouts,
// retries, hedged requests, shedding) enabled. The expectation: every
// system's P99 degrades as intensity grows, and the resilience policies
// claw back a substantial part of the faulty tail at the cost of extra
// attempts and a few deadline misses.
func FaultSweep(sc Scale) *Table {
	intensities := []float64{0, 0.5, 1.0, 2.0}
	systems := cluster.Systems()
	cols := []string{"Fault intensity"}
	for _, k := range systems {
		cols = append(cols, k.String()+" P99 [ms]")
	}
	cols = append(cols, "HHB+Resil P99 [ms]", "HHB+Resil counters")
	t := &Table{
		ID:      "faultsweep",
		Title:   "P99 tail latency vs fault intensity (robustness extension)",
		Columns: cols,
	}
	variants := make([]cluster.Options, 0, len(systems)+1)
	for _, k := range systems {
		variants = append(variants, cluster.SystemOptions(k))
	}
	resil := cluster.SystemOptions(cluster.HardHarvestBlock)
	resil.Name += "+Resil"
	resil.Resilience = cluster.DefaultResilience()
	variants = append(variants, resil)

	base := faults.DefaultPlan()
	runs := make([]preparedRun, 0, len(intensities)*len(variants))
	for _, in := range intensities {
		var plan *faults.Plan
		if in > 0 {
			plan = base.Scaled(in)
		}
		for _, o := range variants {
			cfg := baseConfig(sc)
			cfg.FaultPlan = plan
			o.Observer = sc.observerFor(fmt.Sprintf("%.1fx/%s", in, o.Name))
			runs = append(runs, preparedRun{cfg: cfg, opts: o, work: defaultWork()})
		}
	}
	results := runPrepared(runs)
	for ii, in := range intensities {
		cells := make([]string, 0, len(variants)+1)
		for vi := range variants {
			r := results[ii*len(variants)+vi]
			cells = append(cells, fmt.Sprintf("%.3f", r.AvgP99().Milliseconds()))
			if vi == len(variants)-1 {
				cells = append(cells, fmt.Sprintf("faults=%d retries=%d hedges=%d won=%d sheds=%d misses=%d",
					r.FaultsInjected, r.Retries, r.Hedges, r.HedgesWon, r.Sheds, r.DeadlineMisses))
			}
		}
		t.AddRow(fmt.Sprintf("%.1fx", in), cells...)
	}
	t.Note("P99 degrades with fault intensity for every system (monotone in expectation); timeouts+retries+hedging recover part of the faulty tail")
	return t
}
