package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// The experiment suite is embarrassingly parallel: every server run and
// memory-trace simulation is deterministic and seed-isolated, so sweeps can
// fan their runs out across cores without changing a single table cell. The
// shared pool below bounds how many simulation jobs execute at once;
// coordinator goroutines (the experiment runners themselves) submit jobs
// and collect results in submission order, which keeps output deterministic
// regardless of completion order.
//
// Invariant: jobs submitted to the pool never submit jobs themselves — only
// coordinator goroutines do — so the pool cannot deadlock on nested waits.

var (
	poolMu  sync.Mutex
	poolCap = runtime.GOMAXPROCS(0)
	poolSem chan struct{}
)

// Parallelism reports the current bound on concurrent simulation jobs.
func Parallelism() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return poolCap
}

// SetParallelism bounds the number of simulation jobs running at once
// across the whole suite (hhsim's -parallel flag); n <= 0 resets to
// GOMAXPROCS. Call it before submitting work: jobs already in flight keep
// the semaphore they started on.
func SetParallelism(n int) {
	poolMu.Lock()
	defer poolMu.Unlock()
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	poolCap = n
	poolSem = make(chan struct{}, n)
}

func acquireSem() chan struct{} {
	poolMu.Lock()
	if poolSem == nil {
		poolSem = make(chan struct{}, poolCap)
	}
	sem := poolSem
	poolMu.Unlock()
	sem <- struct{}{}
	return sem
}

// jobResult carries either a job's value or the panic it died with.
type jobResult[T any] struct {
	val   T
	panic any
	stack []byte
}

// Group schedules independent simulation jobs on the shared pool and hands
// their results back in submission order, so a sweep's table rows come out
// identical to a sequential run. Anything order-sensitive that must happen
// before the job runs — resolving a run's observer through the Scale's
// provider, deriving a seed — belongs on the submitting goroutine, not
// inside the job. A Group is not safe for concurrent Submit calls; use one
// per coordinator goroutine.
type Group[T any] struct {
	chans []chan jobResult[T]
}

// Submit schedules f; it returns immediately, f runs when a pool slot
// frees up.
func (g *Group[T]) Submit(f func() T) {
	ch := make(chan jobResult[T], 1)
	g.chans = append(g.chans, ch)
	go func() {
		sem := acquireSem()
		defer func() { <-sem }()
		defer func() {
			if r := recover(); r != nil {
				ch <- jobResult[T]{panic: r, stack: debug.Stack()}
			}
		}()
		ch <- jobResult[T]{val: f()}
	}()
}

// Wait blocks until every submitted job finished and returns their results
// in submission order. A job that panicked re-panics here, on the
// coordinator goroutine.
func (g *Group[T]) Wait() []T {
	out := make([]T, len(g.chans))
	for i, ch := range g.chans {
		r := <-ch
		if r.panic != nil {
			panic(fmt.Sprintf("experiments: pool job panicked: %v\n%s", r.panic, r.stack))
		}
		out[i] = r.val
	}
	g.chans = g.chans[:0]
	return out
}

// collect is the common sweep shape: n independent jobs indexed 0..n-1,
// results in index order. The closure is called concurrently — resolve
// observers and seeds before calling collect if f needs them.
func collect[T any](n int, f func(i int) T) []T {
	var g Group[T]
	for i := 0; i < n; i++ {
		i := i
		g.Submit(func() T { return f(i) })
	}
	return g.Wait()
}
