package experiments

import (
	"fmt"

	"hardharvest/internal/cluster"
)

// LoadSweep is an extension artifact beyond the paper's figures: the
// latency-load curve of the three interesting systems. It shows where each
// system's tail knee sits — software harvesting's knee arrives earliest
// (reclaim storms compound with queueing), HardHarvest's latest (its
// scheduling optimizations buy headroom even over NoHarvest).
func LoadSweep(sc Scale) *Table {
	scales := []float64{0.5, 1.0, 1.5, 2.0, 2.5}
	systems := []cluster.SystemKind{cluster.NoHarvest, cluster.HarvestTerm, cluster.HardHarvestBlock}
	cols := []string{"Load scale"}
	for _, k := range systems {
		cols = append(cols, k.String()+" P99 [ms]")
	}
	t := &Table{
		ID:      "loadsweep",
		Title:   "P99 tail latency vs offered load (extension)",
		Columns: cols,
	}
	for _, ls := range scales {
		cells := make([]string, 0, len(systems))
		for _, k := range systems {
			cfg := baseConfig(sc)
			cfg.LoadScale *= ls
			o := cluster.SystemOptions(k)
			o.Observer = sc.observerFor(fmt.Sprintf("%.1fx/%s", ls, o.Name))
			r := cluster.RunServer(cfg, o, defaultWork())
			cells = append(cells, fmt.Sprintf("%.3f", r.AvgP99().Milliseconds()))
		}
		t.AddRow(fmt.Sprintf("%.1fx", ls), cells...)
	}
	t.Note("at every load the ordering HardHarvest < NoHarvest < software harvesting holds; the software curve bends first")
	return t
}
