package experiments

import (
	"fmt"

	"hardharvest/internal/cluster"
)

// LoadSweep is an extension artifact beyond the paper's figures: the
// latency-load curve of the three interesting systems. It shows where each
// system's tail knee sits — software harvesting's knee arrives earliest
// (reclaim storms compound with queueing), HardHarvest's latest (its
// scheduling optimizations buy headroom even over NoHarvest).
func LoadSweep(sc Scale) *Table {
	scales := []float64{0.5, 1.0, 1.5, 2.0, 2.5}
	systems := []cluster.SystemKind{cluster.NoHarvest, cluster.HarvestTerm, cluster.HardHarvestBlock}
	cols := []string{"Load scale"}
	for _, k := range systems {
		cols = append(cols, k.String()+" P99 [ms]")
	}
	t := &Table{
		ID:      "loadsweep",
		Title:   "P99 tail latency vs offered load (extension)",
		Columns: cols,
	}
	runs := make([]preparedRun, 0, len(scales)*len(systems))
	for _, ls := range scales {
		for _, k := range systems {
			cfg := baseConfig(sc)
			cfg.LoadScale *= ls
			o := cluster.SystemOptions(k)
			o.Observer = sc.observerFor(fmt.Sprintf("%.1fx/%s", ls, o.Name))
			applyResilience(sc, &o)
			runs = append(runs, preparedRun{cfg: cfg, opts: o, work: defaultWork()})
		}
	}
	results := runPrepared(runs)
	for li, ls := range scales {
		cells := make([]string, 0, len(systems))
		for si := range systems {
			r := results[li*len(systems)+si]
			cells = append(cells, fmt.Sprintf("%.3f", r.AvgP99().Milliseconds()))
		}
		t.AddRow(fmt.Sprintf("%.1fx", ls), cells...)
	}
	t.Note("at every load the ordering HardHarvest < NoHarvest < software harvesting holds; the software curve bends first")
	return t
}
