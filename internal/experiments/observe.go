package experiments

import "hardharvest/internal/cluster"

// ObserverProvider hands out per-run observers for instrumented experiment
// runs. ObserverFor is called once per simulated server with the run's
// label (system/variant name, possibly workload-qualified) and returns the
// observer to attach, or nil to leave that run uninstrumented. Even when
// runs execute on the parallel scheduler, ObserverFor is always called on
// the submitting goroutine, in the same deterministic order as a sequential
// run — providers need no locking of their own and can rely on call order
// (e.g. to assign stable trace process IDs). Instrumented scales bypass the
// shared run memo entirely, so a provider sees every one of its runs.
type ObserverProvider interface {
	ObserverFor(run string) cluster.Observer
}

// observerFor resolves the observer for one run under this scale.
func (sc Scale) observerFor(run string) cluster.Observer {
	if sc.Obs == nil {
		return nil
	}
	return sc.Obs.ObserverFor(run)
}
