package experiments

import "hardharvest/internal/cluster"

// ObserverProvider hands out per-run observers for instrumented experiment
// runs. ObserverFor is called once per simulated server with the run's
// label (system/variant name, possibly workload-qualified) and returns the
// observer to attach, or nil to leave that run uninstrumented. Providers
// must be pointer-shaped: Scale is used as a map key by the run cache, so
// its fields must stay comparable.
type ObserverProvider interface {
	ObserverFor(run string) cluster.Observer
}

// observerFor resolves the observer for one run under this scale.
func (sc Scale) observerFor(run string) cluster.Observer {
	if sc.Obs == nil {
		return nil
	}
	return sc.Obs.ObserverFor(run)
}
