package experiments

import (
	"strings"
	"testing"

	"hardharvest/internal/cluster"
	"hardharvest/internal/sim"
)

// micro is the cheapest scale that still simulates real work; the
// determinism tests only need identical bytes, not stable orderings.
func micro() Scale {
	return Scale{Measure: 80 * sim.Millisecond, Warmup: 10 * sim.Millisecond, Servers: 2, Seed: 7}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d after reset", got)
	}
}

func TestGroupOrderAndPanic(t *testing.T) {
	// Results come back in submission order regardless of completion order.
	got := collect(64, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("collect[%d] = %d, want %d", i, v, i*i)
		}
	}
	// A job panic surfaces on the coordinator, not in a bare goroutine.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("job panic did not propagate to Wait")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic lost its cause: %v", r)
		}
	}()
	var g Group[int]
	g.Submit(func() int { panic("boom") })
	g.Wait()
}

// TestAllParallelByteIdentical is the tentpole regression test: the full
// suite run with the pool wide open must render byte-identical tables to a
// pool of one, same seed. Under -race this doubles as the scheduler stress
// test — every experiment's coordinator fans out on the shared pool at once.
func TestAllParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite twice")
	}
	defer SetParallelism(0)
	render := func(tables []*Table) string {
		var b strings.Builder
		for _, tbl := range tables {
			b.WriteString(tbl.String())
		}
		return b.String()
	}
	SetParallelism(8)
	par := render(All(micro()))
	SetParallelism(1)
	seq := render(All(micro()))
	if par != seq {
		t.Fatalf("parallel suite diverged from sequential run:\n--- parallel ---\n%s\n--- sequential ---\n%s", par, seq)
	}
	if !strings.Contains(par, "== fig11:") || !strings.Contains(par, "== summary:") {
		t.Fatalf("suite output incomplete:\n%s", par)
	}
}

// recordingProvider counts ObserverFor calls and records their order.
type recordingProvider struct {
	runs []string
}

func (p *recordingProvider) ObserverFor(run string) cluster.Observer {
	p.runs = append(p.runs, run)
	return nil
}

// TestObserverOrderDeterministic pins the scheduler's observer contract:
// providers are consulted on the coordinator goroutine in the same order as
// a sequential run, even though the simulations themselves run on the pool.
func TestObserverOrderDeterministic(t *testing.T) {
	defer SetParallelism(0)
	order := func(par int) []string {
		SetParallelism(par)
		sc := micro()
		p := &recordingProvider{}
		sc.Obs = p
		Fig4(sc)
		fiveSystems(sc)
		return p.runs
	}
	a, b := order(8), order(1)
	if len(a) == 0 {
		t.Fatal("provider never consulted")
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("observer resolution order depends on parallelism:\npar=8: %v\npar=1: %v", a, b)
	}
}

// TestFiveCacheSkipsInstrumented pins the leak fix: instrumented scales
// bypass the memo (each provider must see its own runs), while plain scales
// add exactly one entry per (scale, system).
func TestFiveCacheSkipsInstrumented(t *testing.T) {
	size := func() int {
		fiveMu.Lock()
		defer fiveMu.Unlock()
		return len(fiveCache)
	}
	sc := micro()
	sc.Seed = 424242 // private seed: no other test shares these entries
	sc.Obs = &recordingProvider{}
	before := size()
	fiveSystems(sc)
	fiveSystems(sc)
	if got := size(); got != before {
		t.Fatalf("instrumented fiveSystems grew the cache: %d -> %d", before, got)
	}
	sc.Obs = nil
	fiveSystems(sc)
	if got := size(); got != before+len(cluster.Systems()) {
		t.Fatalf("plain fiveSystems cached %d entries, want %d", got-before, len(cluster.Systems()))
	}
	fiveSystems(sc)
	if got := size(); got != before+len(cluster.Systems()) {
		t.Fatalf("repeat fiveSystems grew the cache to %d", got-before)
	}
}

func TestTableStringEmptyColumns(t *testing.T) {
	tbl := &Table{ID: "empty", Title: "no columns"}
	tbl.AddRow("orphan", "x")
	tbl.Note("still renders")
	s := tbl.String() // must not panic
	for _, want := range []string{"== empty: no columns ==", "still renders"} {
		if !strings.Contains(s, want) {
			t.Errorf("empty-column render missing %q:\n%s", want, s)
		}
	}
}

func TestTableCellFirstMatch(t *testing.T) {
	tbl := &Table{ID: "dup", Title: "d", Columns: []string{"Service", "P99", "P99"}}
	tbl.AddRow("Text", "1.5", "2.5")
	if v, ok := tbl.Cell("Text", "P99"); !ok || v != "1.5" {
		t.Errorf("duplicate column resolved to %q, want first match 1.5", v)
	}
	if v, ok := tbl.Cell("Text", "Service"); !ok || v != "Text" {
		t.Errorf("label column resolved to %q, want row label", v)
	}
	if _, ok := tbl.Cell("Nope", "P99"); ok {
		t.Error("unknown row resolved")
	}
}
