package experiments

import (
	"fmt"

	"hardharvest/internal/cluster"
)

// Extensions evaluates the §4.1.5 future-work policies layered on
// HardHarvest-Block: keeping a hardware burst buffer of idle cores per
// Primary VM, and adaptively disabling block-harvesting for VMs whose I/O
// blocks are short. The table shows the tail-latency / throughput /
// utilization trade-off each policy buys.
func Extensions(sc Scale) *Table {
	t := &Table{
		ID:      "ext",
		Title:   "Extension policies on HardHarvest-Block (§4.1.5 future work)",
		Columns: []string{"Policy", "Avg P99 [ms]", "Avg P50 [ms]", "Busy cores", "Jobs/s", "Loans"},
	}
	variants := cluster.ExtensionVariants()
	runs := make([]preparedRun, 0, len(variants))
	for _, o := range variants {
		runs = append(runs, prepareOne(sc, o, ""))
	}
	for i, r := range runPrepared(runs) {
		t.AddRow(variants[i].Name, ms(r.AvgP99()), ms(r.AvgP50()),
			fmt.Sprintf("%.1f", r.BusyCores),
			fmt.Sprintf("%.0f", r.HarvestJobsPerSec),
			fmt.Sprintf("%d", r.Reassigns))
	}
	t.Note("the burst buffer trades Harvest VM throughput for reclaim-free burst absorption; adaptive block-harvesting avoids churn on short-block services")
	return t
}
