package experiments

import (
	"fmt"

	"hardharvest/internal/stats"
	"hardharvest/internal/workload"
)

// Profiling reproduces the §4.2.2 validation sweep: across DeathStarBench,
// TrainTicket, and uSuite services, pages allocated before the framework's
// serve loop (code, libraries, read-only data) receive the cross-invocation
// reuse, while post-serve allocations are private to invocations. For every
// modeled service the experiment replays the allocation lifecycle against
// the page-classification table and measures the access-level shared
// fraction.
func Profiling(sc Scale) *Table {
	t := &Table{
		ID:      "profiling",
		Title:   "Shared-before-serve page classification across benchmark suites (§4.2.2)",
		Columns: []string{"Service", "Suite", "Shared pages", "Private pages", "Shared access frac", "Profile SharedFrac"},
	}
	rng := stats.NewRNG(sc.Seed)
	total, consistent := 0, 0
	for _, suite := range workload.Suites() {
		for _, p := range suite.Services {
			r := workload.ProfileAllocations(p, rng.Split(uint64(p.FootprintKB)+uint64(len(p.Name))), 25)
			t.AddRow(p.Name, suite.Name,
				fmt.Sprintf("%d", r.SharedPages),
				fmt.Sprintf("%d", r.PrivatePages),
				f3(r.SharedAccessFrac),
				f2(p.SharedFrac))
			total++
			if d := r.SharedAccessFrac - p.SharedFrac; d > -0.1 && d < 0.1 {
				consistent++
			}
		}
	}
	t.Note("%d/%d services confirm the assumption (paper: all of 60+ profiled services)", consistent, total)
	t.Note("shared pages (pre-serve allocations) receive the cross-invocation reuse; Algorithm 1 keeps them in the non-harvest region")
	return t
}
