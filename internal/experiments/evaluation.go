package experiments

import (
	"fmt"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
)

// Fig11 reproduces the headline end-to-end result: P99 tail latency of
// Primary VM microservices under the five architectures.
func Fig11(sc Scale) *Table {
	res := fiveSystems(sc)
	t := &Table{
		ID:      "fig11",
		Title:   "P99 tail latency [ms] of Primary VM microservices (5 systems)",
		Columns: append(append([]string{"System"}, serviceOrder...), "Avg"),
	}
	for _, k := range cluster.Systems() {
		t.AddRow(k.String(), perServiceP99Row(res[k])...)
	}
	no := float64(res[cluster.NoHarvest].AvgP99())
	ht := float64(res[cluster.HarvestTerm].AvgP99())
	hhb := float64(res[cluster.HardHarvestBlock].AvgP99())
	t.Note("Harvest-Term = %.2fx NoHarvest (paper 3.4x); Harvest-Block = %.2fx (paper 4.1x)",
		ht/no, float64(res[cluster.HarvestBlock].AvgP99())/no)
	t.Note("HardHarvest-Block reduces Harvest-Term tail by %.1f%% (paper 83.3%%) and sits %.1f%% below NoHarvest (paper 28.4%%)",
		100*(1-hhb/ht), 100*(1-hhb/no))
	return t
}

// Fig16 reports the median latency of the same five systems.
func Fig16(sc Scale) *Table {
	res := fiveSystems(sc)
	t := &Table{
		ID:      "fig16",
		Title:   "Median latency [ms] of Primary VM microservices (5 systems)",
		Columns: append(append([]string{"System"}, serviceOrder...), "Avg"),
	}
	for _, k := range cluster.Systems() {
		t.AddRow(k.String(), perServiceP50Row(res[k])...)
	}
	no := float64(res[cluster.NoHarvest].AvgP50())
	t.Note("Harvest-Term median = %+.1f%% vs NoHarvest (paper +7.9%%); HardHarvest-Block = %+.1f%% (paper -26.1%%)",
		100*(float64(res[cluster.HarvestTerm].AvgP50())/no-1),
		100*(float64(res[cluster.HardHarvestBlock].AvgP50())/no-1))
	return t
}

// Fig12 reproduces the cumulative optimization breakdown, starting from
// software Harvest-Block and adding +Sched, +Queue, +CtxtSw, +Part, +Flush,
// and the HardHarvest replacement policy.
func Fig12(sc Scale) *Table {
	t := &Table{
		ID:      "fig12",
		Title:   "Cumulative optimization impact on P99 tail latency",
		Columns: []string{"Config", "Avg P99 [ms]", "Reduction vs Harvest-Block"},
	}
	steps := cluster.Fig12Steps()
	runs := make([]preparedRun, 0, len(steps))
	for _, o := range steps {
		runs = append(runs, prepareOne(sc, o, ""))
	}
	var base float64
	for i, r := range runPrepared(runs) {
		p99 := float64(r.AvgP99())
		if i == 0 {
			base = p99
		}
		t.AddRow(steps[i].Name, ms(r.AvgP99()), pct(1-p99/base))
	}
	t.Note("paper cumulative reductions: 25.6/35.5/61.1/80.1/83.6/85.6%%")
	return t
}

// Fig13 reproduces the Sched vs CtxtSw ablation on Harvest-Block.
func Fig13(sc Scale) *Table {
	t := &Table{
		ID:      "fig13",
		Title:   "Ablation: hardware context switching vs hardware scheduling",
		Columns: []string{"Config", "Avg P99 [ms]", "Reduction vs Harvest-Block"},
	}
	variants := cluster.Fig13Variants()
	runs := make([]preparedRun, 0, len(variants))
	for _, o := range variants {
		runs = append(runs, prepareOne(sc, o, ""))
	}
	var base float64
	for i, r := range runPrepared(runs) {
		p99 := float64(r.AvgP99())
		if i == 0 {
			base = p99
		}
		t.AddRow(variants[i].Name, ms(r.AvgP99()), pct(1-p99/base))
	}
	t.Note("paper: Sched and CtxtSw have similar impact; together they are partially additive")
	return t
}

// Fig15 reproduces the no-harvesting optimization ladder on NoHarvest.
func Fig15(sc Scale) *Table {
	t := &Table{
		ID:      "fig15",
		Title:   "Optimizations without core harvesting (P99 tail latency)",
		Columns: []string{"Config", "Avg P99 [ms]", "Reduction vs NoHarvest"},
	}
	steps := cluster.Fig15Steps()
	runs := make([]preparedRun, 0, len(steps))
	for _, o := range steps {
		runs = append(runs, prepareOne(sc, o, ""))
	}
	var base float64
	for i, r := range runPrepared(runs) {
		p99 := float64(r.AvgP99())
		if i == 0 {
			base = p99
		}
		t.AddRow(steps[i].Name, ms(r.AvgP99()), pct(1-p99/base))
	}
	t.Note("paper cumulative reductions: 14.5/20.1/28.6/33.6%%")
	return t
}

// Fig17 reproduces Harvest VM throughput across the batch workloads,
// normalized to NoHarvest. sc.Servers workloads are swept (8 at full
// scale, one server each, as in the paper's cluster).
func Fig17(sc Scale) *Table {
	works := batch.Workloads()
	n := sc.Servers
	if n <= 0 || n > len(works) {
		n = len(works)
	}
	t := &Table{
		ID:      "fig17",
		Title:   "Harvest VM throughput normalized to NoHarvest",
		Columns: []string{"Workload", "NoHarvest", "Harvest-Term", "Harvest-Block", "HardHarvest-Term", "HardHarvest-Block"},
	}
	// All n*5 (workload, system) runs are independent: prepare them in row
	// order (observer resolution stays deterministic), simulate concurrently,
	// then normalize each row against its NoHarvest run.
	systems := cluster.Systems()
	runs := make([]preparedRun, 0, n*len(systems))
	for wi := 0; wi < n; wi++ {
		w := works[wi]
		for _, k := range systems {
			cfg := baseConfig(sc)
			cfg.Seed = sc.Seed + uint64(wi)*101
			o := cluster.SystemOptions(k)
			o.Observer = sc.observerFor(w.Name + "/" + o.Name)
			runs = append(runs, preparedRun{cfg: cfg, opts: o, work: w})
		}
	}
	results := runPrepared(runs)
	avg := make([]float64, len(systems))
	for wi := 0; wi < n; wi++ {
		cells := make([]string, 0, len(systems))
		var base float64
		for si := range systems {
			jps := results[wi*len(systems)+si].HarvestJobsPerSec
			if si == 0 {
				base = jps
			}
			norm := jps / base
			avg[si] += norm
			cells = append(cells, f2(norm))
		}
		t.AddRow(works[wi].Name, cells...)
	}
	avgCells := make([]string, 0, 5)
	for _, v := range avg {
		avgCells = append(avgCells, f2(v/float64(n)))
	}
	t.AddRow("Average", avgCells...)
	t.Note("paper averages: Harvest-Term 1.7x, HardHarvest-Block 3.1x; memory-intensive workloads (RndFTrain) gain less")
	return t
}

// UtilizationTable reproduces §6.7: average busy cores out of 36 per
// system.
func UtilizationTable(sc Scale) *Table {
	res := fiveSystems(sc)
	t := &Table{
		ID:      "util",
		Title:   "Average core utilization (busy cores of 36, §6.7)",
		Columns: []string{"System", "Busy cores", "vs NoHarvest"},
	}
	no := res[cluster.NoHarvest].BusyCores
	for _, k := range cluster.Systems() {
		t.AddRow(k.String(), fmt.Sprintf("%.1f", res[k].BusyCores),
			ratio(res[k].BusyCores, no))
	}
	t.Note("paper: 10.3 / 23.8 / 26.5 / 28.7 / 34.8 busy cores")
	t.Note("HardHarvest-Block = %.2fx Harvest-Term (paper 1.5x)",
		res[cluster.HardHarvestBlock].BusyCores/res[cluster.HarvestTerm].BusyCores)
	return t
}
