package experiments

import "sync"

// Runner is one experiment's entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(Scale) *Table
}

// Runners lists every experiment in paper order.
func Runners() []Runner {
	return []Runner{
		{"table1", "Architectural parameters", Table1},
		{"fig2", "Alibaba utilization CDF", Fig2},
		{"fig3", "Utilization time series", Fig3},
		{"fig4", "Hypervisor re-assignment overhead", Fig4},
		{"fig5", "Cache/TLB flush overhead", Fig5},
		{"fig6", "Request time breakdown", Fig6},
		{"fig7", "Cache/TLB size sensitivity", Fig7},
		{"fig11", "Tail latency of 5 systems", Fig11},
		{"fig12", "Cumulative optimization breakdown", Fig12},
		{"fig13", "Sched vs CtxtSw ablation", Fig13},
		{"fig14", "L2 replacement policies", Fig14},
		{"fig15", "Optimizations without harvesting", Fig15},
		{"fig16", "Median latency of 5 systems", Fig16},
		{"fig17", "Harvest VM throughput", Fig17},
		{"util", "Core utilization (§6.7)", UtilizationTable},
		{"storage", "Storage cost (§6.8)", StorageTable},
		{"fig18", "LLC size sensitivity", Fig18},
		{"fig19", "Eviction candidate set sensitivity", Fig19},
		{"ext", "Extension policies (§4.1.5 future work)", Extensions},
		{"app", "End-to-end application latency (Figure 1 DAGs)", Application},
		{"profiling", "Shared-before-serve validation sweep (§4.2.2)", Profiling},
		{"loadsweep", "P99 vs offered load (extension)", LoadSweep},
		{"faultsweep", "P99 vs fault intensity (robustness extension)", FaultSweep},
		{"graphsweep", "DAG e2e tail vs harvest placement (extension)", GraphSweep},
		{"summary", "Headline claims, paper vs measured", Summary},
	}
}

// ByID returns the runner with the given id, or nil.
func ByID(id string) *Runner {
	for _, r := range Runners() {
		if r.ID == id {
			return &r
		}
	}
	return nil
}

// All runs every experiment at the given scale and returns the tables in
// paper order. Plain scales run their experiments concurrently (each
// experiment is a coordinator goroutine fanning its simulations out on the
// shared pool; results are collected in registry order, so the tables are
// byte-identical to a sequential run). Instrumented scales (sc.Obs != nil)
// run sequentially: a single shared provider must see its runs in a
// deterministic order across experiments, which concurrent coordinators
// cannot guarantee — callers that want instrumented experiments in
// parallel give each experiment its own provider, as cmd/hhsim does.
func All(sc Scale) []*Table {
	rs := Runners()
	out := make([]*Table, len(rs))
	if sc.Obs != nil {
		for i, r := range rs {
			out[i] = r.Run(sc)
		}
		return out
	}
	var wg sync.WaitGroup
	for i, r := range rs {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = r.Run(sc)
		}()
	}
	wg.Wait()
	return out
}
