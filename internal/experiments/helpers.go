package experiments

import (
	"sync"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/mem"
	"hardharvest/internal/sim"
	"hardharvest/internal/workload"
)

// serviceOrder fixes the row order of the per-service figures, matching the
// paper's x-axes.
var serviceOrder = []string{"Text", "SGraph", "User", "PstStr", "UsrMnt", "HomeT", "CPost", "UrlShort"}

func baseConfig(sc Scale) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.MeasureDuration = sc.Measure
	cfg.WarmupDuration = sc.Warmup
	cfg.Seed = sc.Seed
	return cfg
}

// defaultWork is the batch workload used by single-server latency figures
// (any workload serves; BFS is the paper's first).
func defaultWork() *batch.Workload {
	w, err := batch.WorkloadByName("BFS")
	if err != nil {
		panic(err)
	}
	return w
}

// runOne simulates a single server under the given options.
func runOne(sc Scale, opts cluster.Options) *cluster.ServerResult {
	opts.Observer = sc.observerFor(opts.Name)
	return cluster.RunServer(baseConfig(sc), opts, defaultWork())
}

// runFlat simulates a single server with flat (burst-free) load, as the
// Figure 4/5 motivation experiments do.
func runFlat(sc Scale, opts cluster.Options) *cluster.ServerResult {
	cfg := baseConfig(sc)
	cfg.TraceSteps = 0
	opts.Observer = sc.observerFor(opts.Name)
	return cluster.RunServer(cfg, opts, defaultWork())
}

var (
	fiveMu    sync.Mutex
	fiveCache = map[Scale]map[cluster.SystemKind]*cluster.ServerResult{}
)

// fiveSystems runs the five evaluated architectures on one server. Several
// figures (11, 16, util) share the same runs, so results are memoized per
// scale (simulations are deterministic).
func fiveSystems(sc Scale) map[cluster.SystemKind]*cluster.ServerResult {
	fiveMu.Lock()
	defer fiveMu.Unlock()
	if cached, ok := fiveCache[sc]; ok {
		return cached
	}
	out := make(map[cluster.SystemKind]*cluster.ServerResult, 5)
	for _, k := range cluster.Systems() {
		out[k] = runOne(sc, cluster.SystemOptions(k))
	}
	fiveCache[sc] = out
	return out
}

// perServiceP99Row formats one variant's per-service P99s plus the average.
func perServiceP99Row(r *cluster.ServerResult) []string {
	cells := make([]string, 0, len(serviceOrder)+1)
	for _, svc := range serviceOrder {
		cells = append(cells, ms(r.P99(svc)))
	}
	cells = append(cells, ms(r.AvgP99()))
	return cells
}

// perServiceP50Row formats medians.
func perServiceP50Row(r *cluster.ServerResult) []string {
	cells := make([]string, 0, len(serviceOrder)+1)
	for _, svc := range serviceOrder {
		if rec, ok := r.Service[svc]; ok {
			cells = append(cells, ms(rec.P50()))
		} else {
			cells = append(cells, "-")
		}
	}
	cells = append(cells, ms(r.AvgP50()))
	return cells
}

// streamFor derives a service's synthetic address-stream parameters from
// its workload profile: footprint split by the shared fraction, access
// volume proportional to footprint. Working sets stay modest relative to
// the hierarchy, per the paper's characterization (§3).
func streamFor(p *workload.Profile) mem.StreamParams {
	sp := mem.DefaultStreamParams()
	lines := p.FootprintKB * 1024 / 64
	sp.SharedFrac = p.SharedFrac
	sp.SharedLines = maxI(384, int(float64(lines)*p.SharedFrac*0.45))
	sp.PrivateLines = maxI(384, int(float64(lines)*(1-p.SharedFrac)*0.5))
	sp.AccessesPerInvocation = clampI(lines*8, 8000, 40000)
	// Allocators recycle freed pages, so consecutive invocations touch
	// mostly the same private addresses.
	sp.PrivatePool = 1
	return sp
}

// pressureStreamFor derives the steady-state L2 stream of a service for
// the replacement-policy studies (Figures 14, 19): it includes the
// framework/kernel share of the footprint, which keeps the L2 under
// realistic pressure (the invocation-level stream of streamFor is what the
// size-sensitivity study of Figure 7 varies).
func pressureStreamFor(p *workload.Profile) mem.StreamParams {
	sp := streamFor(p)
	sp.SharedLines = sp.SharedLines * 10 / 3
	sp.PrivateLines = sp.PrivateLines * 4
	sp.PrivatePool = 0 // steady state streams fresh private data
	return sp
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// l2ExecFactor converts an L2 hit rate into an execution-time factor via a
// simple per-access latency model: each memory access costs the L2 round
// trip on a hit and the memory round trip on a miss, amortized against a
// fixed compute component.
func l2ExecFactor(hit float64) float64 {
	const (
		compute = 4.0   // cycles of compute per memory access
		l2Hit   = 13.0  // Table 1 L2 round trip
		l2Miss  = 200.0 // LLC + memory beyond the L2
	)
	amat := hit*l2Hit + (1-hit)*l2Miss
	return (compute + amat) / (compute + l2Hit)
}

// cpuShare reports the fraction of a service's end-to-end time spent on
// CPU (the part cache behaviour scales).
func cpuShare(p *workload.Profile) float64 {
	cpu := float64(p.MeanCPU)
	io := p.MeanIOCalls * float64(p.IOMean)
	return cpu / (cpu + io)
}

// scaleLatency applies an execution-factor to the CPU share of a measured
// latency.
func scaleLatency(base sim.Duration, p *workload.Profile, factor float64) sim.Duration {
	share := cpuShare(p)
	return sim.Duration(float64(base) * (1 + share*(factor-1)))
}
