package experiments

import (
	"sync"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/faults"
	"hardharvest/internal/mem"
	"hardharvest/internal/sim"
	"hardharvest/internal/workload"
)

// serviceOrder fixes the row order of the per-service figures, matching the
// paper's x-axes.
var serviceOrder = []string{"Text", "SGraph", "User", "PstStr", "UsrMnt", "HomeT", "CPost", "UrlShort"}

func baseConfig(sc Scale) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.MeasureDuration = sc.Measure
	cfg.WarmupDuration = sc.Warmup
	cfg.Seed = sc.Seed
	cfg.FaultPlan = sc.Faults
	cfg.Strict = sc.Strict
	return cfg
}

// applyResilience layers the scale's resilience policies onto options that
// do not carry their own.
func applyResilience(sc Scale, opts *cluster.Options) {
	if !opts.Resilience.Enabled() {
		opts.Resilience = sc.Resilience
	}
}

// defaultWork is the batch workload used by single-server latency figures
// (any workload serves; BFS is the paper's first).
func defaultWork() *batch.Workload {
	w, err := batch.WorkloadByName("BFS")
	if err != nil {
		panic(err)
	}
	return w
}

// runOne simulates a single server under the given options.
func runOne(sc Scale, opts cluster.Options) *cluster.ServerResult {
	opts.Observer = sc.observerFor(opts.Name)
	applyResilience(sc, &opts)
	return cluster.RunServer(baseConfig(sc), opts, defaultWork())
}

// runFlat simulates a single server with flat (burst-free) load, as the
// Figure 4/5 motivation experiments do.
func runFlat(sc Scale, opts cluster.Options) *cluster.ServerResult {
	cfg := baseConfig(sc)
	cfg.TraceSteps = 0
	opts.Observer = sc.observerFor(opts.Name)
	applyResilience(sc, &opts)
	return cluster.RunServer(cfg, opts, defaultWork())
}

// preparedRun is one server simulation with its observer already resolved:
// sweeps build these sequentially (so the Scale's ObserverProvider is
// consulted in deterministic order) and then simulate them concurrently.
type preparedRun struct {
	cfg  cluster.Config
	opts cluster.Options
	work *batch.Workload
}

// prepareOne readies a default-workload run of baseConfig(sc); label
// qualifies the run for the observer provider ("" uses the options name).
func prepareOne(sc Scale, opts cluster.Options, label string) preparedRun {
	if label == "" {
		label = opts.Name
	}
	opts.Observer = sc.observerFor(label)
	applyResilience(sc, &opts)
	return preparedRun{cfg: baseConfig(sc), opts: opts, work: defaultWork()}
}

// prepareFlat is prepareOne with flat (burst-free) load, as Figures 4/5 use.
func prepareFlat(sc Scale, opts cluster.Options) preparedRun {
	r := prepareOne(sc, opts, "")
	r.cfg.TraceSteps = 0
	return r
}

// runPrepared simulates prepared runs concurrently on the shared pool and
// returns results in submission order.
func runPrepared(runs []preparedRun) []*cluster.ServerResult {
	return collect(len(runs), func(i int) *cluster.ServerResult {
		return cluster.RunServer(runs[i].cfg, runs[i].opts, runs[i].work)
	})
}

// fiveKey memoizes the five-systems runs by the Scale's value fields only:
// keying by the full Scale (with its ObserverProvider pointer) would add a
// fresh entry — pinning all five ServerResults plus their observers — for
// every instrumented run.
type fiveKey struct {
	measure sim.Duration
	warmup  sim.Duration
	servers int
	seed    uint64
	system  cluster.SystemKind
	faults  *faults.Plan
	strict  bool
	res     cluster.Resilience
}

// fiveEntry is one system's memoized run; the Once gives per-key
// singleflight, so concurrent first callers of distinct systems simulate
// concurrently while duplicate callers share the one run.
type fiveEntry struct {
	once sync.Once
	res  *cluster.ServerResult
}

var (
	fiveMu    sync.Mutex
	fiveCache = map[fiveKey]*fiveEntry{}
)

// fiveSystems runs the five evaluated architectures on one server. Several
// figures (11, 16, util, app, summary) share the same runs, so results are
// memoized per scale (simulations are deterministic) with per-key
// singleflight: the five systems simulate concurrently on first access, and
// figures running in parallel block only on the runs they actually need.
// Instrumented scales (sc.Obs != nil) bypass the memo entirely — each
// provider must see its own runs, and caching them would leak observers.
func fiveSystems(sc Scale) map[cluster.SystemKind]*cluster.ServerResult {
	systems := cluster.Systems()
	var results []*cluster.ServerResult
	if sc.Obs != nil {
		runs := make([]preparedRun, 0, len(systems))
		for _, k := range systems {
			runs = append(runs, prepareOne(sc, cluster.SystemOptions(k), ""))
		}
		results = runPrepared(runs)
	} else {
		entries := make([]*fiveEntry, len(systems))
		fiveMu.Lock()
		for i, k := range systems {
			key := fiveKey{sc.Measure, sc.Warmup, sc.Servers, sc.Seed, k, sc.Faults, sc.Strict, sc.Resilience}
			e, ok := fiveCache[key]
			if !ok {
				e = &fiveEntry{}
				fiveCache[key] = e
			}
			entries[i] = e
		}
		fiveMu.Unlock()
		results = collect(len(systems), func(i int) *cluster.ServerResult {
			e := entries[i]
			e.once.Do(func() { e.res = runOne(sc, cluster.SystemOptions(systems[i])) })
			return e.res
		})
	}
	out := make(map[cluster.SystemKind]*cluster.ServerResult, len(systems))
	for i, k := range systems {
		out[k] = results[i]
	}
	return out
}

// perServiceP99Row formats one variant's per-service P99s plus the average.
func perServiceP99Row(r *cluster.ServerResult) []string {
	cells := make([]string, 0, len(serviceOrder)+1)
	for _, svc := range serviceOrder {
		cells = append(cells, ms(r.P99(svc)))
	}
	cells = append(cells, ms(r.AvgP99()))
	return cells
}

// perServiceP50Row formats medians.
func perServiceP50Row(r *cluster.ServerResult) []string {
	cells := make([]string, 0, len(serviceOrder)+1)
	for _, svc := range serviceOrder {
		if rec, ok := r.Service[svc]; ok {
			cells = append(cells, ms(rec.P50()))
		} else {
			cells = append(cells, "-")
		}
	}
	cells = append(cells, ms(r.AvgP50()))
	return cells
}

// streamFor derives a service's synthetic address-stream parameters from
// its workload profile: footprint split by the shared fraction, access
// volume proportional to footprint. Working sets stay modest relative to
// the hierarchy, per the paper's characterization (§3).
func streamFor(p *workload.Profile) mem.StreamParams {
	sp := mem.DefaultStreamParams()
	lines := p.FootprintKB * 1024 / 64
	sp.SharedFrac = p.SharedFrac
	sp.SharedLines = maxI(384, int(float64(lines)*p.SharedFrac*0.45))
	sp.PrivateLines = maxI(384, int(float64(lines)*(1-p.SharedFrac)*0.5))
	sp.AccessesPerInvocation = clampI(lines*8, 8000, 40000)
	// Allocators recycle freed pages, so consecutive invocations touch
	// mostly the same private addresses.
	sp.PrivatePool = 1
	return sp
}

// pressureStreamFor derives the steady-state L2 stream of a service for
// the replacement-policy studies (Figures 14, 19): it includes the
// framework/kernel share of the footprint, which keeps the L2 under
// realistic pressure (the invocation-level stream of streamFor is what the
// size-sensitivity study of Figure 7 varies).
func pressureStreamFor(p *workload.Profile) mem.StreamParams {
	sp := streamFor(p)
	sp.SharedLines = sp.SharedLines * 10 / 3
	sp.PrivateLines = sp.PrivateLines * 4
	sp.PrivatePool = 0 // steady state streams fresh private data
	return sp
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// l2ExecFactor converts an L2 hit rate into an execution-time factor via a
// simple per-access latency model: each memory access costs the L2 round
// trip on a hit and the memory round trip on a miss, amortized against a
// fixed compute component.
func l2ExecFactor(hit float64) float64 {
	const (
		compute = 4.0   // cycles of compute per memory access
		l2Hit   = 13.0  // Table 1 L2 round trip
		l2Miss  = 200.0 // LLC + memory beyond the L2
	)
	amat := hit*l2Hit + (1-hit)*l2Miss
	return (compute + amat) / (compute + l2Hit)
}

// cpuShare reports the fraction of a service's end-to-end time spent on
// CPU (the part cache behaviour scales).
func cpuShare(p *workload.Profile) float64 {
	cpu := float64(p.MeanCPU)
	io := p.MeanIOCalls * float64(p.IOMean)
	return cpu / (cpu + io)
}

// scaleLatency applies an execution-factor to the CPU share of a measured
// latency.
func scaleLatency(base sim.Duration, p *workload.Profile, factor float64) sim.Duration {
	share := cpuShare(p)
	return sim.Duration(float64(base) * (1 + share*(factor-1)))
}
