// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner builds the workload, executes the
// simulation(s), and returns a Table whose rows match what the paper plots;
// cmd/hhsim prints them, bench_test.go wraps them as benchmarks, and
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"

	"hardharvest/internal/cluster"
	"hardharvest/internal/faults"
	"hardharvest/internal/sim"
)

// Scale bounds an experiment's cost. The paper measures 100K invocations
// across 64 Primary VMs on 8 servers; tests run a single server with a
// shorter window.
type Scale struct {
	// Measure is the per-server measurement window.
	Measure sim.Duration
	// Warmup precedes the window.
	Warmup sim.Duration
	// Servers is the cluster width for experiments that sweep batch
	// workloads (Figure 17); other figures use one server.
	Servers int
	// Seed drives all randomness.
	Seed uint64
	// Obs, when non-nil, provides per-run observers (tracing, sampling;
	// see internal/obs). Instrumented scales skip the shared run memo, so
	// the provider sees every run it instruments rather than sharing
	// cached results with plain scales; observers are resolved in
	// deterministic submission order even under the parallel scheduler.
	Obs ObserverProvider
	// Faults, when non-nil, injects the fault plan into every server run
	// (the faultsweep experiment layers its own intensities on top).
	Faults *faults.Plan
	// Strict makes invariant violations panic with replay information.
	Strict bool
	// Resilience applies request-level timeout/retry/hedge/shed policies
	// to every run that does not set its own.
	Resilience cluster.Resilience
}

// Quick returns a test-friendly scale (~seconds of wall clock per figure).
func Quick() Scale {
	return Scale{Measure: 400 * sim.Millisecond, Warmup: 40 * sim.Millisecond, Servers: 2, Seed: 1}
}

// Full returns the paper-scale configuration.
func Full() Scale {
	return Scale{Measure: 2 * sim.Second, Warmup: 200 * sim.Millisecond, Servers: 8, Seed: 1}
}

// Table is one figure's or table's regenerated data.
type Table struct {
	ID      string
	Title   string
	Columns []string // first column is the row label
	Rows    []Row
	Notes   []string
}

// Row is one line of a table.
type Row struct {
	Label string
	Cells []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(label string, cells ...string) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Note appends an explanatory note (paper-expected shape, deviations).
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text. A table with no columns
// renders its header and notes only — rows have no layout without a
// column set, so they are skipped rather than panicking.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if len(t.Columns) == 0 {
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "  note: %s\n", n)
		}
		return b.String()
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
		for i, c := range r.Cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	writeRow := func(label string, cells []string) {
		fmt.Fprintf(&b, "%-*s", widths[0]+2, label)
		for i, c := range cells {
			w := 12
			if i+1 < len(widths) {
				w = widths[i+1] + 2
			}
			fmt.Fprintf(&b, "%*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns[0], t.Columns[1:])
	for _, r := range t.Rows {
		writeRow(r.Label, r.Cells)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Cell finds a cell by row label and column name (for tests). With
// duplicate column names the first match wins; naming the label column
// (index 0) returns the row label itself.
func (t *Table) Cell(row, col string) (string, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return "", false
	}
	for _, r := range t.Rows {
		if r.Label != row {
			continue
		}
		if ci == 0 {
			return r.Label, true
		}
		if ci-1 < len(r.Cells) {
			return r.Cells[ci-1], true
		}
	}
	return "", false
}

func ms(d sim.Duration) string  { return fmt.Sprintf("%.3f", d.Milliseconds()) }
func pct(f float64) string      { return fmt.Sprintf("%.1f%%", 100*f) }
func ratio(a, b float64) string { return fmt.Sprintf("%.2fx", a/b) }
func f2(f float64) string       { return fmt.Sprintf("%.2f", f) }
func f3(f float64) string       { return fmt.Sprintf("%.3f", f) }
