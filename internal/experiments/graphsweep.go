package experiments

import (
	"fmt"

	"hardharvest/internal/batch"
	"hardharvest/internal/cluster"
	"hardharvest/internal/graph"
	"hardharvest/internal/sim"
)

// GraphSweep is a harvest-placement sensitivity study over a request DAG:
// the DeathStarBench-shaped socialnet graph (frontend -> logic x2 ->
// {cache, db}) runs with exactly one tier group harvesting cores
// (HardHarvest-Block) while the rest stay NoHarvest, and the end-to-end
// critical-path tail is compared across placements. The expectation: where
// harvesting happens matters — a harvested leaf sits on every request's
// critical path twice (cache and db fan-in), so its interference shows up
// in the e2e tail differently than the same harvesting at the frontend,
// and the all-harvest row bounds the per-tier rows.
func GraphSweep(sc Scale) *Table {
	spec := graph.SocialNet(20 * sim.Microsecond)
	placements := []string{"none", "frontend", "logic", "leaf", "all"}
	t := &Table{
		ID:    "graphsweep",
		Title: "End-to-end DAG tail vs harvest placement (socialnet graph)",
		Columns: []string{"Harvest placement", "E2E P50 [ms]", "E2E P99 [ms]",
			"frontend hop P99 [ms]", "logic hop P99 [ms]", "cache hop P99 [ms]", "db hop P99 [ms]"},
	}
	for _, placement := range placements {
		res := runGraphFleet(sc, spec, placement)
		row := []string{
			fmt.Sprintf("%.3f", res.E2E.P50()),
			fmt.Sprintf("%.3f", res.E2E.P99()),
		}
		for _, tier := range []string{"frontend", "logic", "cache", "db"} {
			row = append(row, fmt.Sprintf("%.3f", res.TierByName(tier).Hop.P99()))
		}
		t.AddRow(placement, row...)
	}
	t.Note("harvest placement shifts the e2e tail: leaf-tier harvesting hits the critical path of every fan-in, frontend harvesting only the root hop; 'all' bounds the per-tier rows")
	return t
}

// runGraphFleet simulates the socialnet DAG with one server per tier group;
// the named placement's group (or every group for "all") runs the full
// HardHarvest-Block system while the rest stay NoHarvest, isolating the
// placement's harvesting interference in the end-to-end distribution.
func runGraphFleet(sc Scale, spec *graph.Spec, placement string) *graph.Result {
	var groups []string
	groupIdx := map[string]int{}
	for i := range spec.Tiers {
		if _, ok := groupIdx[spec.Tiers[i].Group]; !ok {
			groupIdx[spec.Tiers[i].Group] = len(groups)
			groups = append(groups, spec.Tiers[i].Group)
		}
	}
	work, err := batch.WorkloadByName("BFS")
	if err != nil {
		panic(err)
	}
	fleet := make([]*cluster.Server, len(groups))
	backends := make([]graph.Backend, len(groups))
	for gi, gname := range groups {
		kind := cluster.NoHarvest
		if placement == "all" || placement == gname {
			kind = cluster.HardHarvestBlock
		}
		cfg := baseConfig(sc)
		cfg.Seed = sc.Seed + uint64(gi)*7919
		opts := cluster.SystemOptions(kind)
		opts.Observer = sc.observerFor(fmt.Sprintf("graphsweep/%s/%s", placement, gname))
		opts.RemoteAdmission = true
		fleet[gi] = cluster.NewServer(cfg, opts, work)
		backends[gi] = graph.Backend{Server: fleet[gi], Cfg: cfg,
			Name: fmt.Sprintf("server%d[%s]", gi, gname)}
	}
	tiers := make([][]int, len(spec.Tiers))
	for ti := range spec.Tiers {
		tiers[ti] = []int{groupIdx[spec.Tiers[ti].Group]}
	}
	gd := graph.New(spec, backends, tiers)
	group := sim.NewShardGroup(0)
	self := group.AddFunc(gd.Engine(), gd.Advance)
	members := make([]int, len(fleet))
	for i, srv := range fleet {
		srv := srv
		m := group.AddFunc(srv.Engine(), func(to sim.Time) {
			if h := srv.Horizon(); to > h {
				to = h
			}
			srv.StepTo(to)
		})
		group.Link(self, m, spec.NetDelay)
		group.Link(m, self, spec.NetDelay)
		members[i] = m
	}
	gd.Bind(group, self, members)
	horizon := sim.Time(0)
	for _, srv := range fleet {
		srv.Start()
		if h := srv.Horizon(); h > horizon {
			horizon = h
		}
	}
	group.Run(horizon)
	for _, srv := range fleet {
		srv.Finish()
	}
	return gd.Finish()
}
