package hardharvest_test

import (
	"testing"

	"hardharvest"
	"hardharvest/internal/core"
)

func defaultMask() core.HarvestMask {
	return core.DefaultHarvestMask([core.NumMaskedStructs]int{12, 8, 8, 4, 8})
}

func requestFor(vm core.VMID, id uint64) *core.Request {
	return &core.Request{ID: core.ReqID(id), VM: vm, PayloadAddr: id << 6}
}

func TestPublicAPISurface(t *testing.T) {
	if len(hardharvest.Systems()) != 5 {
		t.Fatal("want 5 systems")
	}
	if len(hardharvest.Workloads()) != 8 {
		t.Fatal("want 8 batch workloads")
	}
	if len(hardharvest.Services()) != 8 {
		t.Fatal("want 8 service profiles")
	}
	if _, err := hardharvest.WorkloadByName("Hadoop"); err != nil {
		t.Fatal(err)
	}
	if _, err := hardharvest.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload should error")
	}
	cfg := hardharvest.DefaultConfig()
	if cfg.CoresPerServer != 36 || cfg.PrimaryVMs != 8 {
		t.Fatalf("Table 1 shape wrong: %+v", cfg)
	}
	ids := hardharvest.ExperimentIDs()
	if len(ids) < 18 {
		t.Fatalf("experiment ids = %d", len(ids))
	}
	if _, ok := hardharvest.RunExperiment("nope", hardharvest.QuickScale()); ok {
		t.Fatal("unknown experiment should not run")
	}
}

func TestPublicRunServer(t *testing.T) {
	cfg := hardharvest.DefaultConfig()
	cfg.MeasureDuration = 120 * hardharvest.Millisecond
	cfg.WarmupDuration = 20 * hardharvest.Millisecond
	work, _ := hardharvest.WorkloadByName("CC")
	res := hardharvest.RunServer(cfg, hardharvest.SystemOptions(hardharvest.HardHarvestBlock), work)
	if res.Requests == 0 || res.HarvestJobs == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.AvgP99() < res.AvgP50() {
		t.Fatal("P99 below P50")
	}
}

func TestPublicRunCluster(t *testing.T) {
	cfg := hardharvest.DefaultConfig()
	cfg.MeasureDuration = 100 * hardharvest.Millisecond
	cfg.WarmupDuration = 20 * hardharvest.Millisecond
	cr := hardharvest.RunCluster(cfg, hardharvest.SystemOptions(hardharvest.NoHarvest), 2)
	if len(cr.Servers) != 2 {
		t.Fatalf("servers = %d", len(cr.Servers))
	}
	if cr.AvgP99() <= 0 {
		t.Fatal("no cluster tail")
	}
}

func TestPublicController(t *testing.T) {
	ctrl := hardharvest.NewController()
	if err := ctrl.AddVM(1, true, defaultMask()); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.BindCore(0, 1); err != nil {
		t.Fatal(err)
	}
	r := requestFor(1, 1)
	if _, _, err := ctrl.Enqueue(1, r); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := ctrl.Dequeue(0, false)
	if err != nil || got != r {
		t.Fatalf("dequeue = %v, %v", got, err)
	}
	if err := ctrl.Complete(0, r); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExperiment(t *testing.T) {
	tbl, ok := hardharvest.RunExperiment("storage", hardharvest.QuickScale())
	if !ok || len(tbl.Rows) == 0 {
		t.Fatal("storage experiment failed")
	}
	if tbl.String() == "" {
		t.Fatal("empty rendering")
	}
	full := hardharvest.FullScale()
	if full.Measure <= hardharvest.QuickScale().Measure {
		t.Fatal("full scale should exceed quick scale")
	}
}
